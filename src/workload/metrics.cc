#include "workload/metrics.h"

#include <sstream>

namespace cmom::workload {

namespace {
template <typename Getter>
std::uint64_t Sum(const std::vector<ServerMetrics>& servers, Getter get) {
  std::uint64_t total = 0;
  for (const ServerMetrics& m : servers) total += get(m);
  return total;
}
}  // namespace

std::uint64_t MetricsSummary::TotalSent() const {
  return Sum(servers,
             [](const ServerMetrics& m) { return m.stats.messages_sent; });
}
std::uint64_t MetricsSummary::TotalDelivered() const {
  return Sum(servers, [](const ServerMetrics& m) {
    return m.stats.messages_delivered;
  });
}
std::uint64_t MetricsSummary::TotalForwarded() const {
  return Sum(servers, [](const ServerMetrics& m) {
    return m.stats.messages_forwarded;
  });
}
std::uint64_t MetricsSummary::TotalStampBytes() const {
  return Sum(servers,
             [](const ServerMetrics& m) { return m.stats.stamp_bytes_sent; });
}
std::uint64_t MetricsSummary::TotalDiskBytes() const {
  return Sum(servers, [](const ServerMetrics& m) { return m.disk_bytes; });
}
std::uint64_t MetricsSummary::TotalRetransmissions() const {
  return Sum(servers,
             [](const ServerMetrics& m) { return m.stats.retransmissions; });
}
std::uint64_t MetricsSummary::TotalCommits() const {
  return Sum(servers, [](const ServerMetrics& m) { return m.stats.commits; });
}
std::uint64_t MetricsSummary::TotalCommitBytes() const {
  return Sum(servers,
             [](const ServerMetrics& m) { return m.stats.commit_bytes; });
}

void MetricsSummary::Add(ServerId id, const mom::AgentServer& server,
                         const mom::Store& store) {
  ServerMetrics metrics;
  metrics.server = id;
  metrics.stats = server.stats();
  metrics.disk_bytes = store.total_bytes_written();
  servers.push_back(metrics);
}

std::string MetricsSummary::ToTable() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-6s %8s %8s %8s %10s %12s %8s %8s %12s\n", "server", "sent",
                "delivrd", "fwd", "stamp B", "disk B", "rexmit", "commits",
                "commit B");
  out << line;
  for (const ServerMetrics& m : servers) {
    std::snprintf(line, sizeof(line),
                  "%-6s %8llu %8llu %8llu %10llu %12llu %8llu %8llu %12llu\n",
                  to_string(m.server).c_str(),
                  static_cast<unsigned long long>(m.stats.messages_sent),
                  static_cast<unsigned long long>(m.stats.messages_delivered),
                  static_cast<unsigned long long>(m.stats.messages_forwarded),
                  static_cast<unsigned long long>(m.stats.stamp_bytes_sent),
                  static_cast<unsigned long long>(m.disk_bytes),
                  static_cast<unsigned long long>(m.stats.retransmissions),
                  static_cast<unsigned long long>(m.stats.commits),
                  static_cast<unsigned long long>(m.stats.commit_bytes));
    out << line;
  }
  std::snprintf(line, sizeof(line),
                "total  %8llu %8llu %8llu %10llu %12llu %8llu %8llu %12llu\n",
                static_cast<unsigned long long>(TotalSent()),
                static_cast<unsigned long long>(TotalDelivered()),
                static_cast<unsigned long long>(TotalForwarded()),
                static_cast<unsigned long long>(TotalStampBytes()),
                static_cast<unsigned long long>(TotalDiskBytes()),
                static_cast<unsigned long long>(TotalRetransmissions()),
                static_cast<unsigned long long>(TotalCommits()),
                static_cast<unsigned long long>(TotalCommitBytes()));
  out << line;
  return out.str();
}

}  // namespace cmom::workload
