#include "workload/sim_harness.h"

namespace cmom::workload {

SimHarness::SimHarness(domains::MomConfig config, SimHarnessOptions options)
    : config_(std::move(config)), options_(options) {}

mom::AgentServerOptions SimHarness::ServerOptions() {
  mom::AgentServerOptions server_options;
  server_options.cost_model =
      options_.simulate_processing_costs ? &options_.cost_model : nullptr;
  server_options.trace = &trace_;
  server_options.retransmit_timeout_ns = options_.retransmit_timeout_ns;
  server_options.max_retransmit_attempts = options_.max_retransmit_attempts;
  server_options.persist_mode = options_.persist_mode;
  server_options.engine_batch = options_.engine_batch;
  server_options.channel_batch = options_.channel_batch;
  server_options.engine_workers = options_.engine_workers;
  server_options.flow = options_.flow;
  return server_options;
}

Status SimHarness::Init(AgentInstaller installer) {
  installer_ = std::move(installer);

  auto deployment = domains::Deployment::Create(config_);
  if (!deployment.ok()) return deployment.status();
  deployment_ =
      std::make_unique<domains::Deployment>(std::move(deployment).value());

  network_ = std::make_unique<net::SimNetwork>(
      simulator_, options_.cost_model, options_.fault_model,
      options_.fault_seed);

  for (ServerId id : deployment_->servers()) {
    auto endpoint = network_->CreateEndpoint(id);
    if (!endpoint.ok()) return endpoint.status();
    endpoints_.emplace(id, std::move(endpoint).value());
    stores_.emplace(id, std::make_unique<mom::InMemoryStore>());

    auto server = std::make_unique<mom::AgentServer>(
        *deployment_, id, endpoints_.at(id).get(), &runtime_,
        stores_.at(id).get(), ServerOptions());
    if (installer_) installer_(id, *server);
    servers_.emplace(id, std::move(server));
  }
  return Status::Ok();
}

Status SimHarness::BootAll() {
  for (ServerId id : deployment_->servers()) {
    CMOM_RETURN_IF_ERROR(servers_.at(id)->Boot());
  }
  return Status::Ok();
}

Result<MessageId> SimHarness::Send(ServerId from, std::uint32_t from_local,
                                   ServerId to, std::uint32_t to_local,
                                   std::string subject, Bytes payload) {
  return servers_.at(from)->SendMessage(AgentId{from, from_local},
                                        AgentId{to, to_local},
                                        std::move(subject),
                                        std::move(payload));
}

void SimHarness::Crash(ServerId id) {
  // The volatile half dies; the InMemoryStore plays the surviving disk.
  servers_.at(id) = nullptr;
}

Status SimHarness::Restart(ServerId id) {
  auto server = std::make_unique<mom::AgentServer>(
      *deployment_, id, endpoints_.at(id).get(), &runtime_,
      stores_.at(id).get(), ServerOptions());
  if (installer_) installer_(id, *server);
  servers_.at(id) = std::move(server);
  return servers_.at(id)->Boot();
}

causality::CausalityChecker SimHarness::MakeChecker() const {
  std::vector<ServerId> servers(deployment_->servers().begin(),
                                deployment_->servers().end());
  return causality::CausalityChecker(std::move(servers));
}

Status SimHarness::CheckQuiescent() const {
  for (const auto& [id, server] : servers_) {
    if (server == nullptr) continue;  // crashed and not restarted
    if (!server->Idle()) {
      return Status::Internal(to_string(id) + " not idle at quiescence");
    }
    if (server->holdback_size() != 0) {
      return Status::Internal(to_string(id) + " still holds back messages");
    }
  }
  return Status::Ok();
}

}  // namespace cmom::workload
