// The measurement protocols of Section 6.1, packaged as functions the
// figure benches call: a main agent on server 0 runs `rounds` rounds of
// ping-pong (unicast local, unicast remote, or broadcast) and the
// average round-trip time is reported, together with wire-level and
// causal-ordering cost counters.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "domains/config.h"
#include "workload/sim_harness.h"

namespace cmom::workload {

struct ExperimentResult {
  std::size_t servers = 0;
  std::size_t rounds = 0;
  double avg_rtt_ms = 0;
  double min_rtt_ms = 0;
  double max_rtt_ms = 0;
  // Totals over the whole run:
  std::uint64_t wire_frames = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t stamp_bytes = 0;      // causal timestamps on the wire
  std::uint64_t disk_bytes = 0;       // persistent-image writes
  std::uint64_t sim_events = 0;
};

struct ExperimentOptions {
  std::size_t rounds = 100;  // the paper's "100 sends"
  SimHarnessOptions harness{};
  // Cross-check every run with the causality oracle (cheap insurance;
  // on by default).
  bool verify_causality = true;
};

// Unicast ping-pong between the main agent on `main_server` and an echo
// agent on `echo_server` (equal ids = the "local server" series).
[[nodiscard]] Result<ExperimentResult> RunPingPong(
    const domains::MomConfig& config, ServerId main_server,
    ServerId echo_server, const ExperimentOptions& options = {});

// Broadcast ping-pong: the main agent on `main_server` pings echo
// agents on every other server and waits for all pongs each round.
[[nodiscard]] Result<ExperimentResult> RunBroadcast(
    const domains::MomConfig& config, ServerId main_server,
    const ExperimentOptions& options = {});

// ------------------------------------------------------------------
// Reporting helpers shared by the figure benches.
// ------------------------------------------------------------------

struct SeriesPoint {
  std::size_t n = 0;          // number of servers
  double measured_ms = 0;     // our simulated measurement
  double paper_ms = -1;       // the paper's value; < 0 when not given
};

// Prints an aligned table: n | measured | paper (when available) and,
// when the series has >= 3 points, linear and quadratic fits with R^2.
void PrintSeries(const std::string& title,
                 const std::vector<SeriesPoint>& series);

}  // namespace cmom::workload
