// Assembles a wall-clock MOM over the in-process threaded transport.
//
// Same shape as SimHarness but with real threads and real time: every
// server has its own receive thread (the InprocNetwork consumer), the
// timer thread drives retransmissions, and WaitQuiescent() polls until
// the whole bus drains.  Used by the examples and by the wall-clock
// cross-check benches (the paper's single-host configuration).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "causality/checker.h"
#include "causality/trace.h"
#include "domains/deployment.h"
#include "mom/agent_server.h"
#include "mom/store.h"
#include "net/faulty_network.h"
#include "net/inproc_network.h"
#include "net/runtime.h"

namespace cmom::workload {

struct ThreadedHarnessOptions {
  std::uint64_t retransmit_timeout_ns = 500ull * 1000 * 1000;
  // When set, every endpoint is wrapped in a FaultyNetwork decorator
  // injecting drops/duplicates/delays/disconnects on real threads --
  // the wall-clock counterpart of the simulated fault sweeps.
  std::optional<net::FaultyNetworkOptions> fault;
  // Durable-image layout and batching limits, forwarded to every
  // server (see AgentServerOptions).
  mom::PersistMode persist_mode = mom::PersistMode::kIncremental;
  std::size_t engine_batch = 16;
  std::size_t channel_batch = 16;
  // Engine shard workers per server (0 = inline engine).  The threaded
  // runtime supports real parallelism, so this is where the knob does
  // something; see AgentServerOptions::engine_workers.
  std::size_t engine_workers = 0;
};

class ThreadedHarness {
 public:
  using AgentInstaller = std::function<void(ServerId, mom::AgentServer&)>;

  explicit ThreadedHarness(domains::MomConfig config,
                           ThreadedHarnessOptions options = {});
  ~ThreadedHarness();

  [[nodiscard]] Status Init(AgentInstaller installer = {});
  [[nodiscard]] Status BootAll();

  Result<MessageId> Send(ServerId from, std::uint32_t from_local, ServerId to,
                         std::uint32_t to_local, std::string subject,
                         Bytes payload = {});

  // Blocks until every server is idle and the network has no frames in
  // flight (two stable observations in a row).  Crashed servers are
  // skipped, so this can be used to drain the survivors mid-outage.
  void WaitQuiescent();

  // Crash: destroy a server's volatile half (joining its shard workers
  // first; speculative un-committed reactions are discarded exactly as
  // a power cut would).  Its store -- the "disk" -- survives.
  void Crash(ServerId id);
  // Rebuild a crashed server from its store and boot it; the installer
  // passed to Init() re-attaches the same agents.
  [[nodiscard]] Status Restart(ServerId id);

  // Shuts every server down (before network/runtime teardown).
  void ShutdownAll();

  // ShutdownAll plus each server's teardown barrier: joins shard
  // workers and bars timers, so the caller may inspect agent state
  // without racing a worker thread (TSan-visible happens-before).
  void HaltAll();

  [[nodiscard]] mom::AgentServer& server(ServerId id) {
    return *servers_.at(id);
  }
  // Null unless fault injection was configured.
  [[nodiscard]] net::FaultyNetwork* faulty_network() { return faulty_.get(); }
  [[nodiscard]] causality::TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const domains::Deployment& deployment() const {
    return *deployment_;
  }
  [[nodiscard]] causality::CausalityChecker MakeChecker() const;

 private:
  [[nodiscard]] mom::AgentServerOptions ServerOptions();

  domains::MomConfig config_;
  ThreadedHarnessOptions options_;
  AgentInstaller installer_;

  // Destruction order matters: servers and endpoints go first (members
  // below), then the runtime (joins its timer thread, so no delay
  // callback can outlive it), then the fault decorator, then the inner
  // network.
  std::unique_ptr<net::InprocNetwork> network_;
  std::unique_ptr<net::FaultyNetwork> faulty_;
  net::ThreadRuntime runtime_;
  std::unique_ptr<domains::Deployment> deployment_;
  causality::TraceRecorder trace_;

  std::unordered_map<ServerId, std::unique_ptr<mom::InMemoryStore>> stores_;
  std::unordered_map<ServerId, std::unique_ptr<net::Endpoint>> endpoints_;
  std::unordered_map<ServerId, std::unique_ptr<mom::AgentServer>> servers_;
};

}  // namespace cmom::workload
