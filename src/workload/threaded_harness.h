// Assembles a wall-clock MOM over the in-process threaded transport.
//
// Same shape as SimHarness but with real threads and real time: every
// server has its own receive thread (the InprocNetwork consumer), the
// timer thread drives retransmissions, and WaitQuiescent() polls until
// the whole bus drains.  Used by the examples and by the wall-clock
// cross-check benches (the paper's single-host configuration).
//
// The harness doubles as the control plane's ClusterHost: it can stop
// and (re)start servers under different configurations at different
// epochs, creating endpoints and stores on demand for servers that
// join mid-life.  Each epoch's configuration gets its own Deployment
// (servers hold a pointer into it, so deployments are retained for as
// long as the harness lives); reconfig tests drive a
// control::Coordinator directly against the harness.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "causality/checker.h"
#include "causality/trace.h"
#include "control/fence.h"
#include "domains/deployment.h"
#include "mom/agent_server.h"
#include "mom/faulty_store.h"
#include "mom/store.h"
#include "net/faulty_network.h"
#include "net/inproc_network.h"
#include "net/runtime.h"

namespace cmom::workload {

struct ThreadedHarnessOptions {
  std::uint64_t retransmit_timeout_ns = 500ull * 1000 * 1000;
  // When set, every endpoint is wrapped in a FaultyNetwork decorator
  // injecting drops/duplicates/delays/disconnects on real threads --
  // the wall-clock counterpart of the simulated fault sweeps.
  std::optional<net::FaultyNetworkOptions> fault;
  // When set, every server's store is wrapped in a FaultyStore
  // decorator (seeded per server as seed + id), so chaos schedules can
  // arm commit failures and exercise the fail-stop path.  The wrapper
  // sits between server and store only -- StoreOf() still hands the
  // control plane the raw store, so reconfig rewrites (operator
  // actions, not data-path writes) are never fault-injected.
  std::optional<mom::FaultyStoreOptions> store_fault;
  // Durable-image layout and batching limits, forwarded to every
  // server (see AgentServerOptions).
  mom::PersistMode persist_mode = mom::PersistMode::kIncremental;
  std::size_t engine_batch = 16;
  std::size_t channel_batch = 16;
  // Engine shard workers per server (0 = inline engine).  The threaded
  // runtime supports real parallelism, so this is where the knob does
  // something; see AgentServerOptions::engine_workers.
  std::size_t engine_workers = 0;
  // Credit windows, fair forwarding and admission control, forwarded
  // to every server (see flow::FlowOptions).  Tests shrink the
  // watermarks to force backpressure on small traffic volumes.
  flow::FlowOptions flow;
};

class ThreadedHarness final : public control::ClusterHost {
 public:
  using AgentInstaller = std::function<void(ServerId, mom::AgentServer&)>;

  explicit ThreadedHarness(domains::MomConfig config,
                           ThreadedHarnessOptions options = {});
  ~ThreadedHarness() override;

  [[nodiscard]] Status Init(AgentInstaller installer = {});
  [[nodiscard]] Status BootAll();

  Result<MessageId> Send(ServerId from, std::uint32_t from_local, ServerId to,
                         std::uint32_t to_local, std::string subject,
                         Bytes payload = {});

  // Blocks until every server is idle and the network has no frames in
  // flight (two stable observations in a row).  Crashed servers are
  // skipped, so this can be used to drain the survivors mid-outage.
  void WaitQuiescent();

  // Crash: destroy a server's volatile half (joining its shard workers
  // first; speculative un-committed reactions are discarded exactly as
  // a power cut would).  Its store -- the "disk" -- survives.
  void Crash(ServerId id);
  // Rebuild a crashed server from its store and boot it; the installer
  // passed to Init() re-attaches the same agents.  The server comes
  // back at the epoch it last ran under.
  [[nodiscard]] Status Restart(ServerId id);

  // Shuts every server down (before network/runtime teardown).
  void ShutdownAll();

  // ShutdownAll plus each server's teardown barrier: joins shard
  // workers and bars timers, so the caller may inspect agent state
  // without racing a worker thread (TSan-visible happens-before).
  void HaltAll();

  // --- control::ClusterHost ------------------------------------------
  [[nodiscard]] std::vector<ServerId> KnownServers() override;
  [[nodiscard]] mom::AgentServer* ServerOf(ServerId id) override;
  [[nodiscard]] mom::Store* StoreOf(ServerId id) override;
  Status StopServer(ServerId id) override;
  Status StartServer(ServerId id, std::uint64_t epoch,
                     const domains::MomConfig& config) override;

  [[nodiscard]] mom::AgentServer& server(ServerId id) {
    return *servers_.at(id);
  }
  // Null unless fault injection was configured.
  [[nodiscard]] net::FaultyNetwork* faulty_network() { return faulty_.get(); }
  // Null unless store fault injection was configured (or the server was
  // never created).  Survives Crash/Restart: the wrapper, like the
  // store, is the durable half.
  [[nodiscard]] mom::FaultyStore* faulty_store(ServerId id);
  [[nodiscard]] causality::TraceRecorder& trace() { return trace_; }
  // The highest epoch any server was started under.
  [[nodiscard]] std::uint64_t cluster_epoch() const { return cluster_epoch_; }
  // The current cluster epoch's deployment.
  [[nodiscard]] const domains::Deployment& deployment() const {
    return *deployments_.at(cluster_epoch_);
  }
  // Covers every server the harness ever hosted, across all epochs.
  [[nodiscard]] causality::CausalityChecker MakeChecker() const;

 private:
  [[nodiscard]] mom::AgentServerOptions ServerOptions(std::uint64_t epoch);
  // The store a server instance reads and writes: the FaultyStore
  // wrapper when store faults are configured, else the raw store.
  [[nodiscard]] mom::Store* ServerStore(ServerId id);
  // The deployment for `epoch`, built from `config` on first use.
  [[nodiscard]] Result<const domains::Deployment*> DeploymentFor(
      std::uint64_t epoch, const domains::MomConfig& config);

  domains::MomConfig config_;
  ThreadedHarnessOptions options_;
  AgentInstaller installer_;

  // Destruction order matters: servers and endpoints go first (members
  // below), then the runtime (joins its timer thread, so no delay
  // callback can outlive it), then the fault decorator, then the inner
  // network.  Deployments outlive the servers pointing into them.
  std::unique_ptr<net::InprocNetwork> network_;
  std::unique_ptr<net::FaultyNetwork> faulty_;
  net::Network* frontend_ = nullptr;  // network_ or faulty_
  net::ThreadRuntime runtime_;
  std::map<std::uint64_t, std::unique_ptr<domains::Deployment>> deployments_;
  std::uint64_t cluster_epoch_ = 0;
  causality::TraceRecorder trace_;

  std::unordered_map<ServerId, std::unique_ptr<mom::InMemoryStore>> stores_;
  std::unordered_map<ServerId, std::unique_ptr<mom::FaultyStore>>
      faulty_stores_;
  std::unordered_map<ServerId, std::unique_ptr<net::Endpoint>> endpoints_;
  std::unordered_map<ServerId, std::unique_ptr<mom::AgentServer>> servers_;
  // Epoch each server last ran under (what Restart reboots it at).
  std::unordered_map<ServerId, std::uint64_t> server_epochs_;
};

}  // namespace cmom::workload
