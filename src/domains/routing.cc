#include "domains/routing.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <set>

namespace cmom::domains {

Result<RoutingTable> RoutingTable::Build(const MomConfig& config) {
  RoutingTable table;
  const std::size_t n = config.servers.size();
  table.by_rank_ = config.servers;
  std::sort(table.by_rank_.begin(), table.by_rank_.end());
  for (std::size_t i = 0; i < n; ++i) table.rank_[table.by_rank_[i]] = i;

  // Server adjacency: same-domain pairs.  Neighbor sets are ordered so
  // BFS visits smaller ServerIds first (deterministic tie-break).
  std::vector<std::set<std::size_t>> neighbors(n);
  for (const DomainSpec& domain : config.domains) {
    for (std::size_t i = 0; i < domain.members.size(); ++i) {
      for (std::size_t j = i + 1; j < domain.members.size(); ++j) {
        const std::size_t a = table.rank_.at(domain.members[i]);
        const std::size_t b = table.rank_.at(domain.members[j]);
        neighbors[a].insert(b);
        neighbors[b].insert(a);
      }
    }
  }

  constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
  table.next_hop_.assign(n, std::vector<std::size_t>(n, kUnreachable));
  table.hops_.assign(n, std::vector<std::size_t>(n, kUnreachable));

  // BFS from every *destination*, recording each node's first hop back
  // toward it; one pass fills column `dest` of every server's table.
  for (std::size_t dest = 0; dest < n; ++dest) {
    std::queue<std::size_t> frontier;
    table.hops_[dest][dest] = 0;
    table.next_hop_[dest][dest] = dest;
    frontier.push(dest);
    while (!frontier.empty()) {
      const std::size_t node = frontier.front();
      frontier.pop();
      for (std::size_t neighbor : neighbors[node]) {
        if (table.hops_[neighbor][dest] != kUnreachable) continue;
        table.hops_[neighbor][dest] = table.hops_[node][dest] + 1;
        frontier.push(neighbor);
      }
    }
    for (std::size_t from = 0; from < n; ++from) {
      if (table.hops_[from][dest] == kUnreachable) {
        return Status::FailedPrecondition(
            "server graph disconnected: no route " +
            to_string(table.by_rank_[from]) + " -> " +
            to_string(table.by_rank_[dest]));
      }
      if (from == dest) continue;
      // Among all neighbors on *some* shortest path, pick the smallest
      // ServerId (= smallest rank: by_rank_ is sorted).  BFS discovery
      // order would also be deterministic, but this choice is a pure
      // function of the graph, so two epochs that produce the same
      // server graph produce byte-identical tables regardless of how
      // the BFS happened to traverse them.
      for (std::size_t nb : neighbors[from]) {
        if (table.hops_[nb][dest] + 1 == table.hops_[from][dest]) {
          table.next_hop_[from][dest] = nb;
          break;
        }
      }
      assert(table.next_hop_[from][dest] != kUnreachable);
    }
  }
  return table;
}

std::string RoutingTable::DebugString() const {
  std::string out;
  for (std::size_t from = 0; from < by_rank_.size(); ++from) {
    out += to_string(by_rank_[from]);
    out += ":";
    for (std::size_t dest = 0; dest < by_rank_.size(); ++dest) {
      out += " ";
      out += to_string(by_rank_[next_hop_[from][dest]]);
      out += "/";
      out += std::to_string(hops_[from][dest]);
    }
    out += "\n";
  }
  return out;
}

ServerId RoutingTable::NextHop(ServerId from, ServerId dest) const {
  const std::size_t from_rank = rank_.at(from);
  const std::size_t dest_rank = rank_.at(dest);
  return by_rank_[next_hop_[from_rank][dest_rank]];
}

std::size_t RoutingTable::HopCount(ServerId from, ServerId dest) const {
  return hops_[rank_.at(from)][rank_.at(dest)];
}

}  // namespace cmom::domains
