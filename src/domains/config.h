// Static configuration of a domain-partitioned MOM.
//
// Mirrors the paper's deployment model (Section 5): the set of agent
// servers, the domains of causality, and which servers belong to which
// domain are fixed at boot time; routing tables are derived from them
// by shortest path.  A server belonging to two or more domains is a
// causal router-server.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "clocks/causal_clock.h"
#include "clocks/causal_core.h"
#include "common/ids.h"

namespace cmom::domains {

struct DomainSpec {
  DomainId id;
  // Member order is significant: the position of a server in this list
  // is its DomainServerId, i.e. its row/column in the domain's matrix
  // clock.
  std::vector<ServerId> members;
};

struct MomConfig {
  // All agent servers of the MOM.  ServerIds need not be contiguous.
  std::vector<ServerId> servers;
  std::vector<DomainSpec> domains;
  // Stamping algorithm: classical full matrix or Appendix-A updates.
  // Only meaningful for domains running the matrix causal core.
  clocks::StampMode stamp_mode = clocks::StampMode::kUpdates;
  // Causal-delivery core (clocks/causal_core.h) used by every domain
  // unless overridden per domain below.
  clocks::CausalCoreKind causal_core = clocks::CausalCoreKind::kMatrix;
  // Per-domain core overrides, in declaration order.
  std::vector<std::pair<DomainId, clocks::CausalCoreKind>>
      causal_core_overrides;
  // The theorem demo deliberately builds a cyclic domain graph; every
  // production configuration must keep this false so that Deployment
  // validation rejects cycles.
  bool allow_cyclic_domain_graph = false;

  // Effective core kind for one domain.
  [[nodiscard]] clocks::CausalCoreKind CoreFor(DomainId id) const {
    for (const auto& [domain, kind] : causal_core_overrides) {
      if (domain == id) return kind;
    }
    return causal_core;
  }
};

}  // namespace cmom::domains
