// Static configuration of a domain-partitioned MOM.
//
// Mirrors the paper's deployment model (Section 5): the set of agent
// servers, the domains of causality, and which servers belong to which
// domain are fixed at boot time; routing tables are derived from them
// by shortest path.  A server belonging to two or more domains is a
// causal router-server.
#pragma once

#include <cstdint>
#include <vector>

#include "clocks/causal_clock.h"
#include "common/ids.h"

namespace cmom::domains {

struct DomainSpec {
  DomainId id;
  // Member order is significant: the position of a server in this list
  // is its DomainServerId, i.e. its row/column in the domain's matrix
  // clock.
  std::vector<ServerId> members;
};

struct MomConfig {
  // All agent servers of the MOM.  ServerIds need not be contiguous.
  std::vector<ServerId> servers;
  std::vector<DomainSpec> domains;
  // Stamping algorithm: classical full matrix or Appendix-A updates.
  clocks::StampMode stamp_mode = clocks::StampMode::kUpdates;
  // The theorem demo deliberately builds a cyclic domain graph; every
  // production configuration must keep this false so that Deployment
  // validation rejects cycles.
  bool allow_cyclic_domain_graph = false;
};

}  // namespace cmom::domains
