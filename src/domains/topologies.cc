#include "domains/topologies.h"

#include <cassert>
#include <deque>

namespace cmom::domains::topologies {

namespace {
std::vector<ServerId> MakeServers(std::size_t n) {
  std::vector<ServerId> servers;
  servers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    servers.push_back(ServerId(static_cast<std::uint16_t>(i)));
  }
  return servers;
}
}  // namespace

MomConfig Flat(std::size_t n, clocks::StampMode mode) {
  assert(n >= 1);
  MomConfig config;
  config.servers = MakeServers(n);
  config.domains.push_back(DomainSpec{DomainId(0), config.servers});
  config.stamp_mode = mode;
  return config;
}

MomConfig Bus(std::size_t k, std::size_t s, clocks::StampMode mode) {
  assert(k >= 1 && s >= 1);
  MomConfig config;
  config.servers = MakeServers(k * s);
  config.stamp_mode = mode;

  DomainSpec backbone{DomainId(0), {}};
  for (std::size_t leaf = 0; leaf < k; ++leaf) {
    DomainSpec domain{DomainId(static_cast<std::uint16_t>(leaf + 1)), {}};
    for (std::size_t i = 0; i < s; ++i) {
      domain.members.push_back(
          ServerId(static_cast<std::uint16_t>(leaf * s + i)));
    }
    backbone.members.push_back(domain.members.front());
    config.domains.push_back(std::move(domain));
  }
  config.domains.insert(config.domains.begin(), std::move(backbone));
  return config;
}

MomConfig Daisy(std::size_t k, std::size_t s, clocks::StampMode mode) {
  assert(k >= 1 && s >= 2);
  MomConfig config;
  config.servers = MakeServers(k * s - (k - 1));
  config.stamp_mode = mode;
  for (std::size_t d = 0; d < k; ++d) {
    DomainSpec domain{DomainId(static_cast<std::uint16_t>(d)), {}};
    const std::size_t first = d * (s - 1);
    for (std::size_t i = 0; i < s; ++i) {
      domain.members.push_back(
          ServerId(static_cast<std::uint16_t>(first + i)));
    }
    config.domains.push_back(std::move(domain));
  }
  return config;
}

MomConfig Tree(std::size_t branching, std::size_t s, std::size_t depth,
               clocks::StampMode mode) {
  assert(s >= 2);
  assert(branching >= 1 && branching <= s - 1);
  MomConfig config;
  config.stamp_mode = mode;

  std::uint16_t next_server = 0;
  std::uint16_t next_domain = 0;
  auto fresh = [&] { return ServerId(next_server++); };

  struct PendingDomain {
    std::optional<ServerId> shared_with_parent;
    std::size_t level;
  };
  std::deque<PendingDomain> queue;
  queue.push_back(PendingDomain{std::nullopt, 0});
  while (!queue.empty()) {
    PendingDomain pending = queue.front();
    queue.pop_front();
    DomainSpec domain{DomainId(next_domain++), {}};
    if (pending.shared_with_parent) {
      domain.members.push_back(*pending.shared_with_parent);
    }
    while (domain.members.size() < s) domain.members.push_back(fresh());
    if (pending.level < depth) {
      // The last `branching` members become routers into children; they
      // are always fresh servers, never the parent-facing router.
      for (std::size_t child = 0; child < branching; ++child) {
        queue.push_back(PendingDomain{
            domain.members[s - branching + child], pending.level + 1});
      }
    }
    config.domains.push_back(std::move(domain));
  }
  config.servers = MakeServers(next_server);
  return config;
}

MomConfig Ring(std::size_t k, std::size_t s, clocks::StampMode mode) {
  assert(k >= 2 && s >= 2);
  MomConfig config;
  config.stamp_mode = mode;
  config.allow_cyclic_domain_graph = true;
  // Routers r_0 .. r_{k-1}: r_i is shared between domain i and domain
  // (i+1) mod k.  Domain i = { r_{(i+k-1) mod k} , s-2 fresh, r_i }.
  const std::size_t total = k * (s - 1);
  config.servers = MakeServers(total);
  std::vector<ServerId> routers;
  std::uint16_t next_server = 0;
  // Reserve one router id per domain boundary first, then fill bodies.
  for (std::size_t i = 0; i < k; ++i) {
    routers.push_back(ServerId(next_server++));
  }
  for (std::size_t d = 0; d < k; ++d) {
    DomainSpec domain{DomainId(static_cast<std::uint16_t>(d)), {}};
    domain.members.push_back(routers[(d + k - 1) % k]);
    for (std::size_t i = 0; i + 2 < s; ++i) {
      domain.members.push_back(ServerId(next_server++));
    }
    domain.members.push_back(routers[d]);
    config.domains.push_back(std::move(domain));
  }
  assert(next_server == total);
  return config;
}

MomConfig BusForServerCount(std::size_t n, std::size_t domain_size,
                            clocks::StampMode mode) {
  assert(domain_size >= 1);
  const std::size_t k = (n + domain_size - 1) / domain_size;
  return Bus(k, domain_size, mode);
}

}  // namespace cmom::domains::topologies
