// Text serialization of MOM configurations and traffic profiles.
//
// The boot-time configuration (Section 5: servers, domains and hence
// routing are fixed statically) lives in a small line-based format an
// operator can write by hand and `momtool` can validate:
//
//     # an 8-server MOM, Figure 2 of the paper
//     servers = 1 2 3 4 5 6 7 8
//     stamp_mode = updates          # or: full
//     domain 0 = 1 2 3
//     domain 1 = 4 5
//     domain 2 = 7 8
//     domain 3 = 3 5 6 7
//
// `servers = <n>` (a single integer) is shorthand for ids 0..n-1.
// Traffic profiles (for the splitter) are triplets per line:
//
//     # from to messages-per-second
//     0 1 120.5
//     1 0 80
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "domains/config.h"
#include "domains/splitter.h"

namespace cmom::domains {

[[nodiscard]] Result<MomConfig> ParseMomConfig(std::string_view text);
[[nodiscard]] std::string FormatMomConfig(const MomConfig& config);

[[nodiscard]] Result<TrafficProfile> ParseTrafficProfile(
    std::string_view text);
[[nodiscard]] std::string FormatTrafficProfile(const TrafficProfile& traffic);

// File helpers.
[[nodiscard]] Result<MomConfig> LoadMomConfig(const std::string& path);
[[nodiscard]] Status SaveMomConfig(const MomConfig& config,
                                   const std::string& path);
[[nodiscard]] Result<TrafficProfile> LoadTrafficProfile(
    const std::string& path);

}  // namespace cmom::domains
