// Domain interconnection graph and the acyclicity condition.
//
// The theorem (Section 4.3) requires the domain interconnection
// structure to be acyclic.  The paper warns (Section 4.2) that the
// naive graph -- one node per domain, an edge when two domains share a
// server -- does not capture every cycle: two domains sharing *two*
// router-servers also admit the causality break of Figure 4(a), because
// the path (s1, p, s2, q) is a cycle in the formal path sense even
// though the simple domain graph has a single edge.
//
// The faithful characterization is: build the bipartite graph whose
// nodes are domains plus router-servers (servers in >= 2 domains), with
// an edge (r, d) whenever router r belongs to domain d.  The domain
// interconnection structure is acyclic in the paper's sense iff this
// bipartite graph is a forest.  A simple-graph cycle A-B-C-A through
// three distinct routers and a double edge A=B through two shared
// routers both show up as bipartite cycles, while a hub router linking
// many domains (star) stays a tree.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "domains/config.h"

namespace cmom::domains {

struct DomainEdge {
  DomainId a;
  DomainId b;
  ServerId via;  // the shared router-server

  friend bool operator==(const DomainEdge&, const DomainEdge&) = default;
};

class DomainGraph {
 public:
  // Builds the graph from a configuration.  Assumes basic well-
  // formedness (unique ids, members exist); Deployment validates that
  // before calling.
  static DomainGraph Build(const MomConfig& config);

  [[nodiscard]] const std::vector<DomainEdge>& edges() const { return edges_; }

  // Servers that belong to >= 2 domains.
  [[nodiscard]] const std::vector<ServerId>& routers() const {
    return routers_;
  }

  // Returns a human-readable description of one cycle in the bipartite
  // (routers + domains) graph, or nullopt when the graph is a forest.
  [[nodiscard]] std::optional<std::string> FindCycle() const;

  [[nodiscard]] bool IsAcyclic() const { return !FindCycle().has_value(); }

  // True when every domain can reach every other domain through shared
  // routers (single connected component); disconnected configurations
  // cannot route all traffic.
  [[nodiscard]] bool IsConnected() const;

 private:
  std::vector<DomainId> domain_ids_;
  std::vector<ServerId> routers_;
  // adjacency over bipartite node indices: domains first, then routers.
  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<DomainEdge> edges_;
};

}  // namespace cmom::domains
