#include "domains/domain_graph.h"

#include <algorithm>
#include <map>
#include <set>

namespace cmom::domains {

DomainGraph DomainGraph::Build(const MomConfig& config) {
  DomainGraph graph;

  std::map<ServerId, std::vector<DomainId>> domains_of;
  for (const DomainSpec& domain : config.domains) {
    graph.domain_ids_.push_back(domain.id);
    for (ServerId member : domain.members) {
      domains_of[member].push_back(domain.id);
    }
  }

  for (const auto& [server, memberships] : domains_of) {
    if (memberships.size() >= 2) graph.routers_.push_back(server);
  }

  // Bipartite adjacency: node 0..D-1 = domains, D..D+R-1 = routers.
  const std::size_t domain_count = graph.domain_ids_.size();
  graph.adjacency_.resize(domain_count + graph.routers_.size());
  auto domain_index = [&](DomainId id) {
    return static_cast<std::size_t>(
        std::find(graph.domain_ids_.begin(), graph.domain_ids_.end(), id) -
        graph.domain_ids_.begin());
  };
  for (std::size_t r = 0; r < graph.routers_.size(); ++r) {
    const ServerId router = graph.routers_[r];
    const std::vector<DomainId>& memberships = domains_of[router];
    for (DomainId d : memberships) {
      const std::size_t di = domain_index(d);
      graph.adjacency_[di].push_back(domain_count + r);
      graph.adjacency_[domain_count + r].push_back(di);
    }
    // Pairwise domain edges through this router, for reporting.
    for (std::size_t i = 0; i < memberships.size(); ++i) {
      for (std::size_t j = i + 1; j < memberships.size(); ++j) {
        graph.edges_.push_back(
            DomainEdge{memberships[i], memberships[j], router});
      }
    }
  }
  return graph;
}

std::optional<std::string> DomainGraph::FindCycle() const {
  // A connected component with E >= V edges contains a cycle; detect it
  // with a DFS that tracks the parent edge.
  const std::size_t node_count = adjacency_.size();
  std::vector<int> state(node_count, 0);  // 0 unvisited, 1 active, 2 done
  std::vector<std::size_t> parent(node_count, node_count);

  auto describe = [&](std::size_t node) {
    const std::size_t domain_count = domain_ids_.size();
    if (node < domain_count) return to_string(domain_ids_[node]);
    return to_string(routers_[node - domain_count]);
  };

  for (std::size_t start = 0; start < node_count; ++start) {
    if (state[start] != 0) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // (node, from)
    stack.emplace_back(start, node_count);
    while (!stack.empty()) {
      auto [node, from] = stack.back();
      stack.pop_back();
      if (state[node] != 0) {
        // Second arrival: a cycle closes here.  Reconstruct a readable
        // description from the two meeting branches.
        std::string description = "cycle through " + describe(node) +
                                  " (reached again from " + describe(from) +
                                  ")";
        return description;
      }
      state[node] = 1;
      parent[node] = from;
      for (std::size_t next : adjacency_[node]) {
        if (next == from) continue;
        if (state[next] != 0) {
          return "cycle through " + describe(next) + " and " + describe(node);
        }
        stack.emplace_back(next, node);
      }
    }
  }
  return std::nullopt;
}

bool DomainGraph::IsConnected() const {
  if (domain_ids_.size() <= 1) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    std::size_t node = stack.back();
    stack.pop_back();
    for (std::size_t next : adjacency_[node]) {
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  for (std::size_t d = 0; d < domain_ids_.size(); ++d) {
    if (!seen[d]) return false;
  }
  return true;
}

}  // namespace cmom::domains
