// Static routing over the server graph.
//
// Section 5: "The routing table gives, for each destination server, the
// identifier of the server to which the message should be sent [...]
// built statically at boot time [...] based on a shortest path
// algorithm."  Two servers are adjacent when they share a domain (a
// message between them travels inside that domain); the table stores
// the next hop on a shortest path, with deterministic tie-breaking by
// smallest next-hop ServerId so all runs are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "domains/config.h"

namespace cmom::domains {

class RoutingTable {
 public:
  // Builds routing tables for every server.  Fails when the server
  // graph is disconnected (some destination unreachable).
  [[nodiscard]] static Result<RoutingTable> Build(const MomConfig& config);

  // Next hop on the shortest path from `from` toward `dest`.  Returns
  // `dest` itself when they share a domain (direct delivery).
  [[nodiscard]] ServerId NextHop(ServerId from, ServerId dest) const;

  // Number of server-to-server hops from `from` to `dest` (0 when they
  // are equal).
  [[nodiscard]] std::size_t HopCount(ServerId from, ServerId dest) const;

  // Canonical text rendering of the whole table ("from: nexthop/hops
  // ...", one line per server in ServerId order).  Because tie-breaking
  // is a pure function of the server graph, two configs describing the
  // same graph -- e.g. epoch E and E+1 with permuted member listings --
  // render byte-identically, making table diffs meaningful.
  [[nodiscard]] std::string DebugString() const;

 private:
  // next_hop_[from][dest] and hops_[from][dest], by dense rank.
  std::unordered_map<ServerId, std::size_t> rank_;
  std::vector<ServerId> by_rank_;
  std::vector<std::vector<std::size_t>> next_hop_;  // rank of next hop
  std::vector<std::vector<std::size_t>> hops_;
};

}  // namespace cmom::domains
