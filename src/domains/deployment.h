// Validated, resolved deployment of a domain-partitioned MOM.
//
// A Deployment is the boot-time artifact every agent server is
// constructed from: the validated MomConfig plus everything derived
// from it (the domain graph, per-server domain memberships with local
// id tables, and the routing tables).  Building one performs all the
// checks the paper's correctness argument relies on, in particular the
// acyclicity of the domain interconnection graph.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "domains/config.h"
#include "domains/domain_graph.h"
#include "domains/routing.h"

namespace cmom::domains {

// One domain, resolved: member order defines the DomainServerId space
// (the paper's idTable).
struct ResolvedDomain {
  DomainId id;
  std::vector<ServerId> members;

  [[nodiscard]] std::size_t size() const { return members.size(); }

  // Domain-local id of `server`, or nullopt when it is not a member.
  [[nodiscard]] std::optional<DomainServerId> LocalId(ServerId server) const;
  [[nodiscard]] ServerId GlobalId(DomainServerId local) const {
    return members[local.value()];
  }
  [[nodiscard]] bool Contains(ServerId server) const {
    return LocalId(server).has_value();
  }
};

class Deployment {
 public:
  // Validates `config` and derives all boot-time structures.
  // Checks: non-empty server/domain sets, unique ids, unique members,
  // members exist, every server covered by a domain, routable server
  // graph, and (unless allow_cyclic_domain_graph) an acyclic domain
  // interconnection graph per the paper's precise characterization.
  [[nodiscard]] static Result<Deployment> Create(MomConfig config);

  [[nodiscard]] const MomConfig& config() const { return config_; }
  [[nodiscard]] std::span<const ServerId> servers() const {
    return config_.servers;
  }
  [[nodiscard]] std::span<const ResolvedDomain> domains() const {
    return resolved_;
  }
  [[nodiscard]] const DomainGraph& domain_graph() const { return graph_; }
  [[nodiscard]] const RoutingTable& routing() const { return routing_; }

  // Domains a server belongs to (indices into domains()).
  [[nodiscard]] std::span<const std::size_t> DomainIndicesOf(
      ServerId server) const;
  [[nodiscard]] const ResolvedDomain& domain(std::size_t index) const {
    return resolved_[index];
  }

  // A causal router-server belongs to >= 2 domains.
  [[nodiscard]] bool IsRouter(ServerId server) const {
    return DomainIndicesOf(server).size() >= 2;
  }

  // The domain that covers the link between two adjacent servers; when
  // several domains contain both, the one with the smallest DomainId is
  // chosen (deterministic and identical on both sides).
  [[nodiscard]] Result<std::size_t> LinkDomainIndex(ServerId a,
                                                    ServerId b) const;

 private:
  MomConfig config_;
  std::vector<ResolvedDomain> resolved_;
  DomainGraph graph_;
  RoutingTable routing_;
  std::unordered_map<ServerId, std::vector<std::size_t>> memberships_;
};

}  // namespace cmom::domains
