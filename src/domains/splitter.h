// Traffic-aware domain splitting -- the paper's future work (Section 7),
// implemented.
//
// "The division of the MOM in domains needs to be done carefully and
//  the new problem is to find an optimal splitting.  [...] it can be
//  made according to the application's topology."
//
// Given an application communication profile (a weighted traffic matrix
// between servers), DomainSplitter produces an acyclic domain
// decomposition that keeps heavily communicating servers inside one
// domain (one matrix clock, one hop) and pushes light traffic across
// router-servers:
//
//   1. build a maximum-weight spanning tree of the traffic graph, so
//      the heaviest pairs end up tree-adjacent;
//   2. partition the tree into connected clusters of at most
//      `max_domain_size` servers (post-order greedy packing);
//   3. each cluster becomes a domain; for every tree edge crossing two
//      clusters, the parent-side endpoint also joins the child cluster
//      as the causal router-server.
//
// Contracting a tree yields a tree, so the resulting domain
// interconnection graph is acyclic by construction -- the theorem's
// precondition holds for every output, which a Deployment::Create call
// re-verifies.
//
// CostEstimator mirrors the Section 6.2 analytic model: a message
// crossing hops h_1..h_k, where hop h_i travels in a domain of size
// s_i, costs  sum_i (per_hop_fixed + per_entry * stamp(s_i)); stamp()
// is the per-core stamp cost (s^2 matrix, s reduced, O(1) hybrid per
// clocks::CausalCoreStampCost) of the core that domain runs, so a
// hybrid domain is not priced at full-matrix cost.  The expected
// system cost is the traffic-weighted sum over all pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "domains/config.h"

namespace cmom::domains {

// Messages-per-unit-time between ordered server pairs.
class TrafficProfile {
 public:
  explicit TrafficProfile(std::size_t server_count)
      : server_count_(server_count),
        weights_(server_count * server_count, 0.0) {}

  [[nodiscard]] std::size_t server_count() const { return server_count_; }

  [[nodiscard]] double at(std::size_t from, std::size_t to) const {
    return weights_[from * server_count_ + to];
  }
  void set(std::size_t from, std::size_t to, double weight) {
    weights_[from * server_count_ + to] = weight;
  }
  void add(std::size_t from, std::size_t to, double weight) {
    weights_[from * server_count_ + to] += weight;
  }

  // Undirected intensity between a pair.
  [[nodiscard]] double Between(std::size_t a, std::size_t b) const {
    return at(a, b) + at(b, a);
  }

  [[nodiscard]] double Total() const;

 private:
  std::size_t server_count_;
  std::vector<double> weights_;
};

struct SplitterOptions {
  // Upper bound on the number of *own* servers per domain; a domain may
  // additionally host one router shared with its parent cluster, so the
  // matrix dimension is at most max_domain_size + 1.
  std::size_t max_domain_size = 8;
  clocks::StampMode stamp_mode = clocks::StampMode::kUpdates;
};

class DomainSplitter {
 public:
  // Produces a validated-ready MomConfig for `traffic.server_count()`
  // servers (ids 0..n-1).  Fails only on degenerate inputs (no
  // servers, max_domain_size == 0).
  [[nodiscard]] static Result<MomConfig> Split(const TrafficProfile& traffic,
                                               const SplitterOptions& options);

  // The traffic-oblivious baseline: servers in index order chopped into
  // a bus of domains of `max_domain_size` (what an operator does
  // without profiling).
  [[nodiscard]] static MomConfig NaiveSplit(std::size_t server_count,
                                            const SplitterOptions& options);
};

// Parameters of the Section 6.2 analytic per-message cost.
struct CostParams {
  double per_hop_fixed = 1.0;
  double per_entry = 0.02;  // cost of one matrix-clock entry per hop
};

// Section 6.2 analytic per-message cost, traffic-weighted.
class CostEstimator {
 public:
  using Params = CostParams;

  // Expected cost per unit time of running `traffic` over `config`.
  // Routes follow the same shortest-path tables the MOM uses.
  [[nodiscard]] static Result<double> Estimate(
      const MomConfig& config, const TrafficProfile& traffic,
      const CostParams& params = CostParams{});
};

}  // namespace cmom::domains
