#include "domains/splitter.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "clocks/causal_core.h"
#include "domains/deployment.h"

namespace cmom::domains {

double TrafficProfile::Total() const {
  return std::accumulate(weights_.begin(), weights_.end(), 0.0);
}

namespace {

// Disjoint-set union for Kruskal.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

struct Edge {
  std::size_t a;
  std::size_t b;
  double weight;
};

// Maximum-weight spanning tree (forest edges always exist because we
// consider every pair; zero-weight edges connect silent servers).
std::vector<std::vector<std::size_t>> MaxSpanningTree(
    const TrafficProfile& traffic) {
  const std::size_t n = traffic.server_count();
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      edges.push_back(Edge{a, b, traffic.Between(a, b)});
    }
  }
  // Heaviest first; deterministic tie-break by (a, b).
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.weight != y.weight) return x.weight > y.weight;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  Dsu dsu(n);
  std::vector<std::vector<std::size_t>> adjacency(n);
  for (const Edge& edge : edges) {
    if (dsu.Union(edge.a, edge.b)) {
      adjacency[edge.a].push_back(edge.b);
      adjacency[edge.b].push_back(edge.a);
    }
  }
  return adjacency;
}

}  // namespace

Result<MomConfig> DomainSplitter::Split(const TrafficProfile& traffic,
                                        const SplitterOptions& options) {
  const std::size_t n = traffic.server_count();
  if (n == 0) return Status::InvalidArgument("no servers in profile");
  if (options.max_domain_size == 0) {
    return Status::InvalidArgument("max_domain_size must be positive");
  }

  MomConfig config;
  config.stamp_mode = options.stamp_mode;
  for (std::size_t i = 0; i < n; ++i) {
    config.servers.push_back(ServerId(static_cast<std::uint16_t>(i)));
  }
  if (n <= options.max_domain_size) {
    config.domains.push_back(DomainSpec{DomainId(0), config.servers});
    return config;
  }

  const auto tree = MaxSpanningTree(traffic);

  // Post-order packing: each node merges its children's pending sets
  // and emits a cluster whenever the pending set reaches the size cap.
  std::vector<std::vector<std::size_t>> clusters;
  std::vector<std::size_t> cluster_of(n, static_cast<std::size_t>(-1));
  std::vector<std::size_t> parent(n, static_cast<std::size_t>(-1));

  std::vector<std::vector<std::size_t>> pending(n);
  // Iterative post-order DFS from node 0 (the tree is connected).
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (node, from)
  std::vector<std::size_t> order;
  stack.emplace_back(0, static_cast<std::size_t>(-1));
  while (!stack.empty()) {
    auto [node, from] = stack.back();
    stack.pop_back();
    parent[node] = from;
    order.push_back(node);
    for (std::size_t next : tree[node]) {
      if (next != from) stack.emplace_back(next, node);
    }
  }
  auto emit = [&](std::vector<std::size_t>& members) {
    const std::size_t index = clusters.size();
    for (std::size_t member : members) cluster_of[member] = index;
    clusters.push_back(std::move(members));
    members = {};
  };
  // Reverse pre-order = children before parents.  Each node gathers the
  // still-pending sets its children handed up, emits itself when full,
  // and otherwise hands its own set up -- where the parent either
  // merges it (if the cap allows, reserving a slot for the parent
  // itself) or emits it as a finished cluster.  Every pending set is a
  // connected subtree containing its top node, so every emitted
  // cluster is connected and has exactly one tree edge leaving it
  // upward; the contracted cluster graph is therefore a tree.
  const std::size_t cap = options.max_domain_size;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t node = *it;
    pending[node].push_back(node);
    if (parent[node] == static_cast<std::size_t>(-1)) {
      emit(pending[node]);  // root: flush the remainder
    } else if (pending[node].size() >= cap) {
      emit(pending[node]);
    } else {
      auto& up = pending[parent[node]];
      if (up.size() + pending[node].size() + 1 > cap) {
        emit(pending[node]);  // parent side is too full already
      } else {
        up.insert(up.end(), pending[node].begin(), pending[node].end());
        pending[node].clear();
      }
    }
  }

  // Clusters become domains; each tree edge crossing clusters makes the
  // parent-side endpoint a router in the child-side cluster.
  std::vector<std::vector<ServerId>> members(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (std::size_t server : clusters[c]) {
      members[c].push_back(ServerId(static_cast<std::uint16_t>(server)));
    }
  }
  for (std::size_t node = 0; node < n; ++node) {
    const std::size_t up = parent[node];
    if (up == static_cast<std::size_t>(-1)) continue;
    if (cluster_of[node] == cluster_of[up]) continue;
    const ServerId router(static_cast<std::uint16_t>(up));
    auto& child_members = members[cluster_of[node]];
    if (std::find(child_members.begin(), child_members.end(), router) ==
        child_members.end()) {
      child_members.push_back(router);
    }
  }
  for (std::size_t c = 0; c < members.size(); ++c) {
    config.domains.push_back(
        DomainSpec{DomainId(static_cast<std::uint16_t>(c)),
                   std::move(members[c])});
  }
  return config;
}

MomConfig DomainSplitter::NaiveSplit(std::size_t server_count,
                                     const SplitterOptions& options) {
  assert(options.max_domain_size > 0);
  MomConfig config;
  config.stamp_mode = options.stamp_mode;
  for (std::size_t i = 0; i < server_count; ++i) {
    config.servers.push_back(ServerId(static_cast<std::uint16_t>(i)));
  }
  if (server_count <= options.max_domain_size) {
    config.domains.push_back(DomainSpec{DomainId(0), config.servers});
    return config;
  }
  DomainSpec backbone{DomainId(0), {}};
  std::uint16_t next_domain = 1;
  for (std::size_t start = 0; start < server_count;
       start += options.max_domain_size) {
    DomainSpec domain{DomainId(next_domain++), {}};
    for (std::size_t i = start;
         i < std::min(server_count, start + options.max_domain_size); ++i) {
      domain.members.push_back(ServerId(static_cast<std::uint16_t>(i)));
    }
    backbone.members.push_back(domain.members.front());
    config.domains.push_back(std::move(domain));
  }
  config.domains.insert(config.domains.begin(), std::move(backbone));
  return config;
}

Result<double> CostEstimator::Estimate(const MomConfig& config,
                                       const TrafficProfile& traffic,
                                       const Params& params) {
  auto deployment = Deployment::Create(config);
  if (!deployment.ok()) return deployment.status();
  const Deployment& d = deployment.value();

  double total = 0;
  const std::size_t n = traffic.server_count();
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      const double weight = traffic.at(from, to);
      if (weight <= 0 || from == to) continue;
      ServerId at(static_cast<std::uint16_t>(from));
      const ServerId dest(static_cast<std::uint16_t>(to));
      double route_cost = 0;
      while (at != dest) {
        const ServerId hop = d.routing().NextHop(at, dest);
        auto link = d.LinkDomainIndex(at, hop);
        if (!link.ok()) return link.status();
        const ResolvedDomain& domain = d.domain(link.value());
        // Stamp cost depends on the causal core the hop's domain runs:
        // s^2 entries for the matrix baseline, s for reduced stamps,
        // O(1) for hybrid buffering (see clocks::CausalCoreStampCost).
        const double stamp_entries = static_cast<double>(
            clocks::CausalCoreStampCost(config.CoreFor(domain.id),
                                        domain.size()));
        route_cost += params.per_hop_fixed + params.per_entry * stamp_entries;
        at = hop;
      }
      total += weight * route_cost;
    }
  }
  return total;
}

}  // namespace cmom::domains
