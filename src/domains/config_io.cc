#include "domains/config_io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace cmom::domains {

namespace {

// Strips comments and surrounding whitespace.
std::string_view CleanLine(std::string_view line) {
  if (const auto hash = line.find('#'); hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
    line.remove_prefix(1);
  }
  while (!line.empty() &&
         (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  return line;
}

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream stream{std::string(line)};
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

Result<std::uint64_t> ParseUnsigned(const std::string& token) {
  std::uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("not a number: '" + token + "'");
  }
  return value;
}

Result<double> ParseDouble(const std::string& token) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(token, &consumed);
    if (consumed != token.size()) {
      return Status::InvalidArgument("not a number: '" + token + "'");
    }
    return value;
  } catch (const std::exception&) {
    return Status::InvalidArgument("not a number: '" + token + "'");
  }
}

}  // namespace

Result<MomConfig> ParseMomConfig(std::string_view text) {
  MomConfig config;
  bool saw_servers = false;

  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    std::string_view raw =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_number;

    const std::string_view line = CleanLine(raw);
    if (line.empty()) continue;
    auto tokens = Tokenize(line);
    auto error = [&](const std::string& message) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + message);
    };

    if (tokens[0] == "servers") {
      if (tokens.size() < 3 || tokens[1] != "=") {
        return error("expected 'servers = <n> | <id list>'");
      }
      if (saw_servers) return error("duplicate 'servers' line");
      saw_servers = true;
      if (tokens.size() == 3) {
        auto count = ParseUnsigned(tokens[2]);
        if (!count.ok()) return error(count.status().message());
        for (std::uint64_t i = 0; i < count.value(); ++i) {
          config.servers.push_back(
              ServerId(static_cast<std::uint16_t>(i)));
        }
      } else {
        for (std::size_t t = 2; t < tokens.size(); ++t) {
          auto id = ParseUnsigned(tokens[t]);
          if (!id.ok()) return error(id.status().message());
          config.servers.push_back(
              ServerId(static_cast<std::uint16_t>(id.value())));
        }
      }
    } else if (tokens[0] == "domain") {
      if (tokens.size() < 4 || tokens[2] != "=") {
        return error("expected 'domain <id> = <member list>'");
      }
      auto id = ParseUnsigned(tokens[1]);
      if (!id.ok()) return error(id.status().message());
      DomainSpec domain{DomainId(static_cast<std::uint16_t>(id.value())), {}};
      for (std::size_t t = 3; t < tokens.size(); ++t) {
        auto member = ParseUnsigned(tokens[t]);
        if (!member.ok()) return error(member.status().message());
        domain.members.push_back(
            ServerId(static_cast<std::uint16_t>(member.value())));
      }
      config.domains.push_back(std::move(domain));
    } else if (tokens[0] == "stamp_mode") {
      if (tokens.size() != 3 || tokens[1] != "=") {
        return error("expected 'stamp_mode = updates|full'");
      }
      if (tokens[2] == "updates") {
        config.stamp_mode = clocks::StampMode::kUpdates;
      } else if (tokens[2] == "full") {
        config.stamp_mode = clocks::StampMode::kFullMatrix;
      } else {
        return error("unknown stamp mode '" + tokens[2] + "'");
      }
    } else if (tokens[0] == "causal_core") {
      // 'causal_core = <kind>' sets the MOM-wide default;
      // 'causal_core <domain> = <kind>' overrides one domain.
      if (tokens.size() == 3 && tokens[1] == "=") {
        auto kind = clocks::ParseCausalCoreKind(tokens[2]);
        if (!kind.has_value()) {
          return error("unknown causal core '" + tokens[2] + "'");
        }
        config.causal_core = *kind;
      } else if (tokens.size() == 4 && tokens[2] == "=") {
        auto id = ParseUnsigned(tokens[1]);
        if (!id.ok()) return error(id.status().message());
        auto kind = clocks::ParseCausalCoreKind(tokens[3]);
        if (!kind.has_value()) {
          return error("unknown causal core '" + tokens[3] + "'");
        }
        const DomainId domain(static_cast<std::uint16_t>(id.value()));
        for (const auto& [existing, _] : config.causal_core_overrides) {
          if (existing == domain) {
            return error("duplicate causal_core override for domain " +
                         tokens[1]);
          }
        }
        config.causal_core_overrides.emplace_back(domain, *kind);
      } else {
        return error(
            "expected 'causal_core = <kind>' or 'causal_core <domain> = "
            "<kind>' with kind matrix|reduced|hybrid");
      }
    } else if (tokens[0] == "allow_cyclic") {
      if (tokens.size() != 3 || tokens[1] != "=") {
        return error("expected 'allow_cyclic = true|false'");
      }
      if (tokens[2] == "true") {
        config.allow_cyclic_domain_graph = true;
      } else if (tokens[2] == "false") {
        config.allow_cyclic_domain_graph = false;
      } else {
        return error("expected true or false");
      }
    } else {
      return error("unknown directive '" + tokens[0] + "'");
    }
  }
  if (!saw_servers) {
    return Status::InvalidArgument("missing 'servers' line");
  }
  return config;
}

std::string FormatMomConfig(const MomConfig& config) {
  std::ostringstream out;
  // Use the dense shorthand when ids are 0..n-1.
  bool dense = true;
  for (std::size_t i = 0; i < config.servers.size(); ++i) {
    if (config.servers[i] != ServerId(static_cast<std::uint16_t>(i))) {
      dense = false;
      break;
    }
  }
  out << "servers =";
  if (dense) {
    out << " " << config.servers.size();
  } else {
    for (ServerId id : config.servers) out << " " << id.value();
  }
  out << "\n";
  out << "stamp_mode = "
      << (config.stamp_mode == clocks::StampMode::kUpdates ? "updates"
                                                           : "full")
      << "\n";
  if (config.causal_core != clocks::CausalCoreKind::kMatrix) {
    out << "causal_core = " << clocks::CausalCoreKindName(config.causal_core)
        << "\n";
  }
  if (config.allow_cyclic_domain_graph) out << "allow_cyclic = true\n";
  for (const DomainSpec& domain : config.domains) {
    out << "domain " << domain.id.value() << " =";
    for (ServerId member : domain.members) out << " " << member.value();
    out << "\n";
  }
  for (const auto& [domain, kind] : config.causal_core_overrides) {
    out << "causal_core " << domain.value() << " = "
        << clocks::CausalCoreKindName(kind) << "\n";
  }
  return out.str();
}

Result<TrafficProfile> ParseTrafficProfile(std::string_view text) {
  struct Entry {
    std::size_t from, to;
    double weight;
  };
  std::vector<Entry> entries;
  std::size_t max_server = 0;

  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    std::string_view raw =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_number;
    const std::string_view line = CleanLine(raw);
    if (line.empty()) continue;
    auto tokens = Tokenize(line);
    if (tokens.size() != 3) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": expected '<from> <to> <weight>'");
    }
    auto from = ParseUnsigned(tokens[0]);
    if (!from.ok()) return from.status();
    auto to = ParseUnsigned(tokens[1]);
    if (!to.ok()) return to.status();
    auto weight = ParseDouble(tokens[2]);
    if (!weight.ok()) return weight.status();
    if (weight.value() < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": negative weight");
    }
    entries.push_back(Entry{static_cast<std::size_t>(from.value()),
                            static_cast<std::size_t>(to.value()),
                            weight.value()});
    max_server = std::max({max_server, entries.back().from,
                           entries.back().to});
  }
  TrafficProfile traffic(entries.empty() ? 0 : max_server + 1);
  for (const Entry& entry : entries) {
    traffic.add(entry.from, entry.to, entry.weight);
  }
  return traffic;
}

std::string FormatTrafficProfile(const TrafficProfile& traffic) {
  std::ostringstream out;
  for (std::size_t from = 0; from < traffic.server_count(); ++from) {
    for (std::size_t to = 0; to < traffic.server_count(); ++to) {
      if (traffic.at(from, to) > 0) {
        out << from << " " << to << " " << traffic.at(from, to) << "\n";
      }
    }
  }
  return out.str();
}

namespace {
Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}
}  // namespace

Result<MomConfig> LoadMomConfig(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseMomConfig(text.value());
}

Status SaveMomConfig(const MomConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Unavailable("cannot write " + path);
  out << FormatMomConfig(config);
  return out.good() ? Status::Ok() : Status::Unavailable("write failed");
}

Result<TrafficProfile> LoadTrafficProfile(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseTrafficProfile(text.value());
}

}  // namespace cmom::domains
