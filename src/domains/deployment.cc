#include "domains/deployment.h"

#include <algorithm>
#include <set>
#include <utility>

namespace cmom::domains {

std::optional<DomainServerId> ResolvedDomain::LocalId(ServerId server) const {
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == server) {
      return DomainServerId(static_cast<std::uint16_t>(i));
    }
  }
  return std::nullopt;
}

Result<Deployment> Deployment::Create(MomConfig config) {
  if (config.servers.empty()) {
    return Status::InvalidArgument("no servers configured");
  }
  if (config.domains.empty()) {
    return Status::InvalidArgument("no domains configured");
  }
  {
    std::set<ServerId> unique_servers(config.servers.begin(),
                                      config.servers.end());
    if (unique_servers.size() != config.servers.size()) {
      return Status::InvalidArgument("duplicate server id");
    }
  }
  std::set<ServerId> known(config.servers.begin(), config.servers.end());
  std::set<DomainId> domain_ids;
  for (const DomainSpec& domain : config.domains) {
    if (!domain_ids.insert(domain.id).second) {
      return Status::InvalidArgument("duplicate domain id " +
                                     to_string(domain.id));
    }
    if (domain.members.empty()) {
      return Status::InvalidArgument("empty domain " + to_string(domain.id));
    }
    std::set<ServerId> unique_members;
    for (ServerId member : domain.members) {
      if (!known.contains(member)) {
        return Status::InvalidArgument(to_string(domain.id) +
                                       " references unknown server " +
                                       to_string(member));
      }
      if (!unique_members.insert(member).second) {
        return Status::InvalidArgument(to_string(domain.id) +
                                       " lists " + to_string(member) +
                                       " twice");
      }
    }
  }

  for (const auto& [domain, kind] : config.causal_core_overrides) {
    if (!domain_ids.contains(domain)) {
      return Status::InvalidArgument("causal_core override for unknown " +
                                     to_string(domain));
    }
    (void)kind;
  }

  Deployment deployment;
  deployment.config_ = std::move(config);
  for (std::size_t d = 0; d < deployment.config_.domains.size(); ++d) {
    const DomainSpec& spec = deployment.config_.domains[d];
    deployment.resolved_.push_back(ResolvedDomain{spec.id, spec.members});
    for (ServerId member : spec.members) {
      deployment.memberships_[member].push_back(d);
    }
  }
  for (ServerId server : deployment.config_.servers) {
    if (!deployment.memberships_.contains(server)) {
      return Status::InvalidArgument(to_string(server) +
                                     " belongs to no domain");
    }
  }

  deployment.graph_ = DomainGraph::Build(deployment.config_);
  if (!deployment.config_.allow_cyclic_domain_graph) {
    if (auto cycle = deployment.graph_.FindCycle()) {
      return Status::FailedPrecondition(
          "domain interconnection graph is cyclic (" + *cycle +
          "); the causality theorem requires an acyclic graph");
    }
  }

  auto routing = RoutingTable::Build(deployment.config_);
  if (!routing.ok()) return routing.status();
  deployment.routing_ = std::move(routing).value();
  return deployment;
}

std::span<const std::size_t> Deployment::DomainIndicesOf(
    ServerId server) const {
  auto it = memberships_.find(server);
  if (it == memberships_.end()) return {};
  return it->second;
}

Result<std::size_t> Deployment::LinkDomainIndex(ServerId a, ServerId b) const {
  std::optional<std::size_t> best;
  for (std::size_t index : DomainIndicesOf(a)) {
    if (!resolved_[index].Contains(b)) continue;
    if (!best || resolved_[index].id < resolved_[*best].id) best = index;
  }
  if (!best) {
    return Status::NotFound("no common domain between " + to_string(a) +
                            " and " + to_string(b));
  }
  return *best;
}

}  // namespace cmom::domains
