// Canonical domain organizations.
//
// Figure 9 of the paper shows the three acyclic organizations used in
// the evaluation -- Bus, Daisy and Hierarchical (tree) -- plus we
// provide Flat (one global domain: the classical algorithm, the
// baseline of Figures 7/8) and Ring (a deliberately cyclic organization
// used by the theorem demonstration).  All builders number servers
// densely from 0 and are fully deterministic.
#pragma once

#include <cstddef>

#include "domains/config.h"

namespace cmom::domains::topologies {

// One global domain containing all `n` servers: the classical matrix
// clock over the whole MOM.  Matrix size n^2.
[[nodiscard]] MomConfig Flat(std::size_t n,
                             clocks::StampMode mode = clocks::StampMode::kUpdates);

// Bus of domains (Figure 9, left): `k` leaf domains of `s` servers
// each; the first server of every leaf is also a member of the
// backbone domain D0.  Total servers: k * s.  Depth d = 1, the
// configuration behind Figure 10's linear cost.
[[nodiscard]] MomConfig Bus(std::size_t k, std::size_t s,
                            clocks::StampMode mode = clocks::StampMode::kUpdates);

// Daisy chain (Figure 9, middle): `k` domains of `s` servers; adjacent
// domains share exactly one router-server.  Total: k*s - (k-1).
[[nodiscard]] MomConfig Daisy(std::size_t k, std::size_t s,
                              clocks::StampMode mode = clocks::StampMode::kUpdates);

// Hierarchical tree (Figure 9, right): every domain has `s` servers and
// `branching` sub-domains down to `depth` (root is depth 0); each child
// shares one router with its parent.  Requires 2 <= branching <= s-1.
// Total servers: 1 + (s-1) * (branching^(depth+1) - 1) / (branching - 1).
[[nodiscard]] MomConfig Tree(std::size_t branching, std::size_t s,
                             std::size_t depth,
                             clocks::StampMode mode = clocks::StampMode::kUpdates);

// Ring of `k` domains of `s` servers, each sharing a router with the
// next, the last closing the cycle.  VIOLATES the theorem's condition;
// the returned config sets allow_cyclic_domain_graph so a Deployment
// can be built for the Figure-4 causality-break demonstration.
// Requires k >= 2 (k == 2 yields two domains sharing two routers, the
// subtle cycle discussed in domain_graph.h).  Total: k * (s - 1).
[[nodiscard]] MomConfig Ring(std::size_t k, std::size_t s,
                             clocks::StampMode mode = clocks::StampMode::kUpdates);

// Bus sized for approximately `n` total servers with `domain_size`
// servers per leaf domain (the experiment driver for Figure 10 uses
// this).  The actual server count, k * domain_size, may round up.
[[nodiscard]] MomConfig BusForServerCount(
    std::size_t n, std::size_t domain_size,
    clocks::StampMode mode = clocks::StampMode::kUpdates);

}  // namespace cmom::domains::topologies
