// Point-to-point queue destination (the JMS "queue" to topic.h's
// "topic", completing the JORAM-style messaging pair on the causal
// bus).
//
// Producers put messages into the queue; competing consumers register
// and each queued message is dispatched to exactly one consumer,
// round-robin.  Messages that arrive while no consumer is registered
// are buffered durably and flushed when one appears.  Because the
// queue agent reacts to puts one at a time on the causal bus, dispatch
// order per consumer respects the causal order of the puts.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "mom/agent.h"
#include "mom/agent_server.h"

namespace cmom::pubsub {

// Control subjects understood by QueueAgent.
inline constexpr const char* kQueuePut = "queue.put";
inline constexpr const char* kQueueListen = "queue.listen";
inline constexpr const char* kQueueIgnore = "queue.ignore";
// Consumers receive dispatched work with this subject; the payload is
// (task name, body, original producer), as in pubsub::Event.
inline constexpr const char* kQueueTask = "queue.task";

class QueueAgent final : public mom::Agent {
 public:
  // `max_depth` bounds the no-consumer buffer (slow-consumer policy):
  // a put arriving with the buffer full is retired through
  // ReactionContext::DeadLetter -- a persistent dlq/ record on servers
  // that support it -- instead of growing memory without bound.  The
  // default 0 keeps the historical unbounded behavior.
  QueueAgent() = default;
  explicit QueueAgent(std::size_t max_depth) : max_depth_(max_depth) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override;

  [[nodiscard]] const std::vector<AgentId>& consumers() const {
    return consumers_;
  }
  [[nodiscard]] std::size_t buffered() const { return buffered_.size(); }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  [[nodiscard]] std::uint64_t dead_lettered() const { return dead_lettered_; }

  void EncodeState(ByteWriter& out) const override;
  [[nodiscard]] Status DecodeState(ByteReader& in) override;

 private:
  void Dispatch(mom::ReactionContext& ctx, const Bytes& task_payload);

  std::vector<AgentId> consumers_;
  std::deque<Bytes> buffered_;  // task payloads awaiting a consumer
  std::size_t next_consumer_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t dead_lettered_ = 0;
  std::size_t max_depth_ = 0;  // configuration, not state; 0 = unbounded
};

// Client-side helpers (mirroring topic.h).
[[nodiscard]] Result<MessageId> Put(mom::AgentServer& server,
                                    AgentId producer, AgentId queue,
                                    std::string task_name, Bytes body = {});
[[nodiscard]] Result<MessageId> Listen(mom::AgentServer& server,
                                       AgentId consumer, AgentId queue);
[[nodiscard]] Result<MessageId> Ignore(mom::AgentServer& server,
                                       AgentId consumer, AgentId queue);

// Decodes a kQueueTask message received by a consumer.  Reuses the
// Event shape of topic.h: (name, body, producer).
struct Task {
  std::string name;
  Bytes body;
  AgentId producer;
};
[[nodiscard]] Result<Task> DecodeTask(const mom::Message& message);

}  // namespace cmom::pubsub
