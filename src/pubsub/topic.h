// Topic-based publish/subscribe on top of the causal agent bus.
//
// The AAA MOM grew into JORAM, a JMS provider; this module provides the
// corresponding publish/subscribe abstraction over this repo's agent
// model.  A TopicAgent hosts one topic: it keeps the durable subscriber
// list and fans every published event out to all subscribers.
//
// Ordering guarantees inherited from the causal bus:
//  - per-topic total order: the topic agent reacts to publications one
//    at a time, so every subscriber sees the same event order;
//  - global causal order: if publish(e1) causally precedes publish(e2)
//    (even on different topics), no subscriber sees e2 before e1,
//    because fan-out messages travel on the same causally ordered bus.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "mom/agent.h"
#include "mom/agent_server.h"

namespace cmom::pubsub {

// Control subjects understood by TopicAgent.
inline constexpr const char* kSubscribe = "topic.subscribe";
inline constexpr const char* kUnsubscribe = "topic.unsubscribe";
inline constexpr const char* kPublish = "topic.publish";
// Events reach subscribers with this subject; the payload carries the
// publisher-chosen event name plus the event body.
inline constexpr const char* kEvent = "topic.event";

class TopicAgent final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override;

  [[nodiscard]] const std::vector<AgentId>& subscribers() const {
    return subscribers_;
  }
  [[nodiscard]] std::uint64_t events_published() const {
    return events_published_;
  }

  void EncodeState(ByteWriter& out) const override;
  [[nodiscard]] Status DecodeState(ByteReader& in) override;

 private:
  std::vector<AgentId> subscribers_;
  std::uint64_t events_published_ = 0;
};

// ---------------------------------------------------------------------
// Client-side helpers (usable from outside a reaction).
// ---------------------------------------------------------------------

// Asks `topic` to add `subscriber` to its durable subscriber list.  The
// request is a plain causal message from `subscriber`'s server.
[[nodiscard]] Result<MessageId> Subscribe(mom::AgentServer& server,
                                          AgentId subscriber, AgentId topic);
[[nodiscard]] Result<MessageId> Unsubscribe(mom::AgentServer& server,
                                            AgentId subscriber,
                                            AgentId topic);
// Publishes an event (name + body) on `topic` on behalf of `publisher`.
[[nodiscard]] Result<MessageId> Publish(mom::AgentServer& server,
                                        AgentId publisher, AgentId topic,
                                        std::string event_name,
                                        Bytes body = {});

// In-reaction variants, for agents that subscribe or publish while
// reacting (keeps the operation atomic with the reaction).
void SubscribeFrom(mom::ReactionContext& ctx, AgentId topic);
void PublishFrom(mom::ReactionContext& ctx, AgentId topic,
                 std::string event_name, Bytes body = {});

// Decodes a kEvent message received by a subscriber into (event name,
// body, original publisher).
struct Event {
  std::string name;
  Bytes body;
  AgentId publisher;
};
[[nodiscard]] Result<Event> DecodeEvent(const mom::Message& message);

// Payload codecs shared by the helpers and the TopicAgent (exposed for
// tests).
[[nodiscard]] Bytes EncodeAgentIdPayload(AgentId id);
[[nodiscard]] Result<AgentId> DecodeAgentIdPayload(const Bytes& payload);
[[nodiscard]] Bytes EncodePublishPayload(const std::string& event_name,
                                         const Bytes& body);

}  // namespace cmom::pubsub
