#include "pubsub/topic.h"

#include <algorithm>

#include "common/log.h"

namespace cmom::pubsub {

namespace {

void WriteAgentId(ByteWriter& out, AgentId id) {
  out.WriteU16(id.server.value());
  out.WriteVarU32(id.local);
}

Result<AgentId> ReadAgentId(ByteReader& in) {
  auto server = in.ReadU16();
  if (!server.ok()) return server.status();
  auto local = in.ReadVarU32();
  if (!local.ok()) return local.status();
  return AgentId{ServerId(server.value()), local.value()};
}

}  // namespace

Bytes EncodeAgentIdPayload(AgentId id) {
  ByteWriter out;
  WriteAgentId(out, id);
  return std::move(out).Take();
}

Result<AgentId> DecodeAgentIdPayload(const Bytes& payload) {
  ByteReader in(payload);
  return ReadAgentId(in);
}

Bytes EncodePublishPayload(const std::string& event_name, const Bytes& body) {
  ByteWriter out;
  out.WriteString(event_name);
  out.WriteBytes(body);
  return std::move(out).Take();
}

void TopicAgent::React(mom::ReactionContext& ctx,
                       const mom::Message& message) {
  if (message.subject == kSubscribe) {
    auto subscriber = DecodeAgentIdPayload(message.payload);
    if (!subscriber.ok()) {
      CMOM_LOG(kWarning) << "bad subscribe payload: " << subscriber.status();
      return;
    }
    if (std::find(subscribers_.begin(), subscribers_.end(),
                  subscriber.value()) == subscribers_.end()) {
      subscribers_.push_back(subscriber.value());
    }
    return;
  }
  if (message.subject == kUnsubscribe) {
    auto subscriber = DecodeAgentIdPayload(message.payload);
    if (!subscriber.ok()) return;
    subscribers_.erase(std::remove(subscribers_.begin(), subscribers_.end(),
                                   subscriber.value()),
                       subscribers_.end());
    return;
  }
  if (message.subject == kPublish) {
    ++events_published_;
    // Re-wrap with the original publisher so subscribers can attribute
    // the event.
    ByteReader in(message.payload);
    auto event_name = in.ReadString();
    auto body = in.ReadBytes();
    if (!event_name.ok() || !body.ok()) {
      CMOM_LOG(kWarning) << "bad publish payload on topic " << ctx.self();
      return;
    }
    ByteWriter out;
    out.WriteString(event_name.value());
    out.WriteBytes(body.value());
    WriteAgentId(out, message.from);
    const Bytes event_payload = std::move(out).Take();
    for (AgentId subscriber : subscribers_) {
      ctx.Send(subscriber, kEvent, event_payload);
    }
    return;
  }
  CMOM_LOG(kWarning) << "topic " << ctx.self() << ": unknown subject '"
                     << message.subject << "'";
}

void TopicAgent::EncodeState(ByteWriter& out) const {
  out.WriteVarU64(subscribers_.size());
  for (AgentId subscriber : subscribers_) WriteAgentId(out, subscriber);
  out.WriteVarU64(events_published_);
}

Status TopicAgent::DecodeState(ByteReader& in) {
  auto count = in.ReadVarU64();
  if (!count.ok()) return count.status();
  subscribers_.clear();
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto subscriber = ReadAgentId(in);
    if (!subscriber.ok()) return subscriber.status();
    subscribers_.push_back(subscriber.value());
  }
  auto published = in.ReadVarU64();
  if (!published.ok()) return published.status();
  events_published_ = published.value();
  return Status::Ok();
}

Result<MessageId> Subscribe(mom::AgentServer& server, AgentId subscriber,
                            AgentId topic) {
  return server.SendMessage(subscriber, topic, kSubscribe,
                            EncodeAgentIdPayload(subscriber));
}

Result<MessageId> Unsubscribe(mom::AgentServer& server, AgentId subscriber,
                              AgentId topic) {
  return server.SendMessage(subscriber, topic, kUnsubscribe,
                            EncodeAgentIdPayload(subscriber));
}

Result<MessageId> Publish(mom::AgentServer& server, AgentId publisher,
                          AgentId topic, std::string event_name, Bytes body) {
  return server.SendMessage(publisher, topic, kPublish,
                            EncodePublishPayload(event_name, body));
}

void SubscribeFrom(mom::ReactionContext& ctx, AgentId topic) {
  ctx.Send(topic, kSubscribe, EncodeAgentIdPayload(ctx.self()));
}

void PublishFrom(mom::ReactionContext& ctx, AgentId topic,
                 std::string event_name, Bytes body) {
  ctx.Send(topic, kPublish, EncodePublishPayload(event_name, body));
}

Result<Event> DecodeEvent(const mom::Message& message) {
  if (message.subject != kEvent) {
    return Status::InvalidArgument("not a topic event");
  }
  ByteReader in(message.payload);
  auto name = in.ReadString();
  if (!name.ok()) return name.status();
  auto body = in.ReadBytes();
  if (!body.ok()) return body.status();
  auto publisher = ReadAgentId(in);
  if (!publisher.ok()) return publisher.status();
  Event event;
  event.name = std::move(name).value();
  event.body = std::move(body).value();
  event.publisher = publisher.value();
  return event;
}

}  // namespace cmom::pubsub
