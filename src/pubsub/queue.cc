#include "pubsub/queue.h"

#include <algorithm>

#include "common/log.h"
#include "pubsub/topic.h"  // shared agent-id payload codecs

namespace cmom::pubsub {

namespace {

// Task payload in flight to a consumer: name, body, producer -- the
// same wire shape topic.h uses for events.
Bytes EncodeTaskPayload(const std::string& name, const Bytes& body,
                        AgentId producer) {
  ByteWriter out;
  out.WriteString(name);
  out.WriteBytes(body);
  out.WriteU16(producer.server.value());
  out.WriteVarU32(producer.local);
  return std::move(out).Take();
}

}  // namespace

void QueueAgent::Dispatch(mom::ReactionContext& ctx,
                          const Bytes& task_payload) {
  const AgentId consumer = consumers_[next_consumer_ % consumers_.size()];
  next_consumer_ = (next_consumer_ + 1) % consumers_.size();
  ++dispatched_;
  ctx.Send(consumer, kQueueTask, task_payload);
}

void QueueAgent::React(mom::ReactionContext& ctx,
                       const mom::Message& message) {
  if (message.subject == kQueueListen) {
    auto consumer = DecodeAgentIdPayload(message.payload);
    if (!consumer.ok()) return;
    if (std::find(consumers_.begin(), consumers_.end(), consumer.value()) ==
        consumers_.end()) {
      consumers_.push_back(consumer.value());
      // A newly available consumer drains the buffered backlog.
      while (!buffered_.empty()) {
        Dispatch(ctx, buffered_.front());
        buffered_.pop_front();
      }
    }
    return;
  }
  if (message.subject == kQueueIgnore) {
    auto consumer = DecodeAgentIdPayload(message.payload);
    if (!consumer.ok()) return;
    const auto before = consumers_.size();
    consumers_.erase(std::remove(consumers_.begin(), consumers_.end(),
                                 consumer.value()),
                     consumers_.end());
    if (before != 0 && next_consumer_ >= consumers_.size()) {
      next_consumer_ = 0;
    }
    return;
  }
  if (message.subject == kQueuePut) {
    ByteReader in(message.payload);
    auto name = in.ReadString();
    auto body = in.ReadBytes();
    if (!name.ok() || !body.ok()) {
      CMOM_LOG(kWarning) << "bad queue.put payload at " << ctx.self();
      return;
    }
    const Bytes task =
        EncodeTaskPayload(name.value(), body.value(), message.from);
    if (consumers_.empty()) {
      if (max_depth_ != 0 && buffered_.size() >= max_depth_) {
        ++dead_lettered_;
        ctx.DeadLetter("queue depth limit", message);
        return;
      }
      buffered_.push_back(task);
    } else {
      Dispatch(ctx, task);
    }
    return;
  }
  CMOM_LOG(kWarning) << "queue " << ctx.self() << ": unknown subject '"
                     << message.subject << "'";
}

void QueueAgent::EncodeState(ByteWriter& out) const {
  out.WriteVarU64(consumers_.size());
  for (AgentId consumer : consumers_) {
    out.WriteU16(consumer.server.value());
    out.WriteVarU32(consumer.local);
  }
  out.WriteVarU64(buffered_.size());
  for (const Bytes& task : buffered_) out.WriteBytes(task);
  out.WriteVarU64(next_consumer_);
  out.WriteVarU64(dispatched_);
  out.WriteVarU64(dead_lettered_);
}

Status QueueAgent::DecodeState(ByteReader& in) {
  auto consumer_count = in.ReadVarU64();
  if (!consumer_count.ok()) return consumer_count.status();
  consumers_.clear();
  for (std::uint64_t i = 0; i < consumer_count.value(); ++i) {
    auto server = in.ReadU16();
    if (!server.ok()) return server.status();
    auto local = in.ReadVarU32();
    if (!local.ok()) return local.status();
    consumers_.push_back(AgentId{ServerId(server.value()), local.value()});
  }
  auto buffered_count = in.ReadVarU64();
  if (!buffered_count.ok()) return buffered_count.status();
  buffered_.clear();
  for (std::uint64_t i = 0; i < buffered_count.value(); ++i) {
    auto task = in.ReadBytes();
    if (!task.ok()) return task.status();
    buffered_.push_back(std::move(task).value());
  }
  auto next = in.ReadVarU64();
  if (!next.ok()) return next.status();
  next_consumer_ = static_cast<std::size_t>(next.value());
  auto dispatched = in.ReadVarU64();
  if (!dispatched.ok()) return dispatched.status();
  dispatched_ = dispatched.value();
  // Absent in pre-flow state images; treat as zero.
  if (in.exhausted()) {
    dead_lettered_ = 0;
    return Status::Ok();
  }
  auto dead = in.ReadVarU64();
  if (!dead.ok()) return dead.status();
  dead_lettered_ = dead.value();
  return Status::Ok();
}

Result<MessageId> Put(mom::AgentServer& server, AgentId producer,
                      AgentId queue, std::string task_name, Bytes body) {
  return server.SendMessage(producer, queue, kQueuePut,
                            EncodePublishPayload(task_name, body));
}

Result<MessageId> Listen(mom::AgentServer& server, AgentId consumer,
                         AgentId queue) {
  return server.SendMessage(consumer, queue, kQueueListen,
                            EncodeAgentIdPayload(consumer));
}

Result<MessageId> Ignore(mom::AgentServer& server, AgentId consumer,
                         AgentId queue) {
  return server.SendMessage(consumer, queue, kQueueIgnore,
                            EncodeAgentIdPayload(consumer));
}

Result<Task> DecodeTask(const mom::Message& message) {
  if (message.subject != kQueueTask) {
    return Status::InvalidArgument("not a queue task");
  }
  ByteReader in(message.payload);
  auto name = in.ReadString();
  if (!name.ok()) return name.status();
  auto body = in.ReadBytes();
  if (!body.ok()) return body.status();
  auto server = in.ReadU16();
  if (!server.ok()) return server.status();
  auto local = in.ReadVarU32();
  if (!local.ok()) return local.status();
  Task task;
  task.name = std::move(name).value();
  task.body = std::move(body).value();
  task.producer = AgentId{ServerId(server.value()), local.value()};
  return task;
}

}  // namespace cmom::pubsub
