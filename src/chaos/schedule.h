// Deterministic fault schedules.
//
// A Schedule is a sorted list of fault events (crash/restart,
// partition/heal, store-fault arm/disarm, slow-consumer phases) at
// millisecond offsets from soak start, generated entirely from a seed:
// the same seed always yields the same schedule, so any failing soak
// replays with CMOM_SEED=<seed>.  (The *interleaving* of faults with
// traffic still depends on thread timing; the schedule pins what is
// injected and when, which in practice reproduces most failures.)
//
// Generation maintains the invariants the orchestrator's final drain
// depends on: every crash is paired with a restart, every partition
// with a heal, every arm with a disarm, and all pairs close before the
// end of the run.  Per-target windows never overlap (a server is not
// crashed while already down), and crash targets are disjoint from
// store-fault targets so a restart never boots into an armed fault.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"

namespace cmom::chaos {

enum class FaultKind : std::uint8_t {
  kCrash,              // destroy the server's volatile half
  kRestart,            // rebuild it from its store
  kPartition,          // install a named bidirectional cut
  kHeal,               // remove it
  kStoreFaultArm,      // the target's Nth commit from now fails
  kStoreFaultDisarm,   // clear store faults; restart if fail-stopped
  kSlowConsumer,       // set the consumer's service time
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  std::uint64_t at_ms = 0;
  FaultKind kind = FaultKind::kCrash;
  // kCrash / kRestart / kStoreFaultArm / kStoreFaultDisarm target.
  ServerId target{0};
  // kPartition / kHeal.
  std::string partition_name;
  std::vector<ServerId> side_a;
  std::vector<ServerId> side_b;
  // kStoreFaultArm: fail the Nth commit from arming (1 = next).
  std::uint64_t fail_after_commits = 0;
  // kSlowConsumer: new service time.
  std::uint64_t service_us = 0;
};

struct ScheduleOptions {
  std::uint64_t duration_ms = 2000;
  // Fault windows last between these bounds.
  std::uint64_t min_outage_ms = 100;
  std::uint64_t max_outage_ms = 400;
  // How many of each fault pair to inject (best effort: a pair that
  // cannot fit its window before the end of the run is dropped).
  std::size_t crash_count = 2;
  std::size_t partition_count = 2;
  std::size_t store_fault_count = 1;
  std::size_t slow_consumer_count = 1;
  // Servers eligible for crash/restart.  Must be disjoint from
  // store_fault_targets (see header comment).
  std::vector<ServerId> crashable;
  // Servers whose FaultyStore gets armed commit failures.
  std::vector<ServerId> store_fault_targets;
  // Candidate partition cuts (side_a, side_b).
  std::vector<std::pair<std::vector<ServerId>, std::vector<ServerId>>> cuts;
  // Slow-consumer service times (phase sets slow, pair-close restores
  // base).
  std::uint64_t base_service_us = 100;
  std::uint64_t slow_service_us = 2000;
};

class Schedule {
 public:
  // Deterministic: events depend only on (seed, options).
  [[nodiscard]] static Schedule Random(std::uint64_t seed,
                                       const ScheduleOptions& options);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace cmom::chaos
