#include "chaos/orchestrator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/log.h"
#include "mom/agent.h"
#include "workload/threaded_harness.h"

namespace cmom::chaos {

namespace {

// Mirrors examples/configs/overload.conf: two producer-edge domains
// funnel through the single router-server S3 into the consumer domain.
constexpr std::uint16_t kProducers[] = {0, 1, 2, 4, 5, 6};
constexpr std::uint16_t kRouter = 3;
constexpr std::uint16_t kConsumer = 7;
constexpr std::size_t kHighWatermark = 64;

domains::MomConfig OverloadConfig(clocks::CausalCoreKind causal_core) {
  domains::MomConfig config;
  for (std::uint16_t s = 0; s < 8; ++s) config.servers.push_back(ServerId(s));
  config.domains.push_back(
      {DomainId(0), {ServerId(0), ServerId(1), ServerId(2), ServerId(3)}});
  config.domains.push_back(
      {DomainId(1), {ServerId(3), ServerId(4), ServerId(5), ServerId(6)}});
  config.domains.push_back({DomainId(2), {ServerId(3), ServerId(7)}});
  config.causal_core = causal_core;
  return config;
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Delivery-latency samples, shared across consumer incarnations (the
// consumer server may crash and restart mid-soak; the recorder, like
// the store, survives).  A redelivered reaction whose first run did not
// commit records twice -- acceptable measurement noise, documented in
// EXPERIMENTS.md.
class LatencyRecorder {
 public:
  void Record(std::uint64_t ns) {
    std::lock_guard lock(mutex_);
    samples_.push_back(ns);
  }

  [[nodiscard]] std::vector<std::uint64_t> Snapshot() const {
    std::lock_guard lock(mutex_);
    return samples_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> samples_;
};

class ChaosConsumer final : public mom::Agent {
 public:
  ChaosConsumer(LatencyRecorder* recorder, std::atomic<std::uint64_t>* service)
      : recorder_(recorder), service_us_(service) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    if (message.payload.size() >= sizeof(std::uint64_t)) {
      std::uint64_t sent_ns = 0;
      std::memcpy(&sent_ns, message.payload.data(), sizeof(sent_ns));
      const std::uint64_t now = NowNs();
      if (now > sent_ns) recorder_->Record(now - sent_ns);
    }
    const std::uint64_t us = service_us_->load(std::memory_order_relaxed);
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }

 private:
  LatencyRecorder* recorder_;
  std::atomic<std::uint64_t>* service_us_;
};

double PercentileMs(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return static_cast<double>(sorted[index]) / 1e6;
}

}  // namespace

Result<SoakReport> RunChaosSoak(const ChaosSoakOptions& options) {
  SoakReport report;
  report.seed = options.seed;
  report.duration_ms = options.duration_ms;

  ScheduleOptions schedule_options;
  schedule_options.duration_ms = options.duration_ms;
  schedule_options.min_outage_ms = options.min_outage_ms;
  schedule_options.max_outage_ms = options.max_outage_ms;
  schedule_options.crash_count = options.crash_count;
  schedule_options.partition_count = options.partition_count;
  schedule_options.store_fault_count = options.store_fault_count;
  schedule_options.slow_consumer_count = options.slow_consumer_count;
  schedule_options.base_service_us = options.base_service_us;
  schedule_options.slow_service_us = options.slow_service_us;
  // Crash targets stay disjoint from store-fault targets (a restart
  // must never boot into an armed fault; see chaos/schedule.h).
  schedule_options.crashable = {ServerId(1), ServerId(5),
                                ServerId(kConsumer)};
  schedule_options.store_fault_targets = {ServerId(2), ServerId(kRouter)};
  // Cut the router away from one producer edge at a time: traffic from
  // the cut side stalls on retransmit timers until the heal.
  schedule_options.cuts.push_back(
      {{ServerId(kRouter)}, {ServerId(4), ServerId(5), ServerId(6)}});
  schedule_options.cuts.push_back(
      {{ServerId(0), ServerId(1)}, {ServerId(kRouter)}});
  const Schedule schedule = Schedule::Random(options.seed, schedule_options);

  workload::ThreadedHarnessOptions harness_options;
  // Short retransmit so healed partitions recover within the run.
  harness_options.retransmit_timeout_ns = 100ull * 1000 * 1000;
  harness_options.fault.emplace();
  harness_options.fault->seed = options.seed + 1;
  harness_options.store_fault.emplace();
  harness_options.store_fault->seed = options.seed + 2;
  harness_options.flow.high_watermark = kHighWatermark;
  harness_options.flow.low_watermark = 16;
  harness_options.flow.initial_credit = 16;
  harness_options.flow.drr_quantum = 4;
  harness_options.flow.engine_admit_high = kHighWatermark;
  harness_options.flow.engine_admit_low = 16;
  harness_options.flow.out_admit_high = kHighWatermark;
  harness_options.flow.wait_queue_max = 64;

  std::atomic<std::uint64_t> service_us{options.base_service_us};
  LatencyRecorder recorder;

  workload::ThreadedHarness harness(OverloadConfig(options.causal_core),
                                    harness_options);
  CMOM_RETURN_IF_ERROR(
      harness.Init([&](ServerId id, mom::AgentServer& server) {
        if (id == ServerId(kConsumer)) {
          server.AttachAgent(
              1, std::make_unique<ChaosConsumer>(&recorder, &service_us));
        }
      }));
  CMOM_RETURN_IF_ERROR(harness.BootAll());

  // Server lifecycle (Crash/Restart rebinds the unique_ptr in the
  // harness) is exclusive against every concurrent reader: producers
  // sending, the sampler polling gauges.
  std::shared_mutex lifecycle_mutex;

  const auto start = std::chrono::steady_clock::now();
  std::atomic<bool> running{true};

  // Backlog sampler (peaks, against the credit-window bounds).
  std::atomic<std::uint64_t> consumer_peak{0};
  std::atomic<std::uint64_t> router_peak{0};
  std::thread sampler([&] {
    while (running.load(std::memory_order_relaxed)) {
      {
        std::shared_lock lock(lifecycle_mutex);
        if (mom::AgentServer* c = harness.ServerOf(ServerId(kConsumer))) {
          const auto cf = c->fence_status();
          const std::uint64_t backlog = cf.queue_in + cf.holdback + cf.inflight;
          if (backlog > consumer_peak.load()) consumer_peak.store(backlog);
        }
        if (mom::AgentServer* r = harness.ServerOf(ServerId(kRouter))) {
          const auto rf = r->fence_status();
          const auto rflow = r->flow_status();
          const std::uint64_t backlog = rf.queue_in + rf.holdback +
                                        rf.inflight + rf.queue_out +
                                        rflow.staged_forwards;
          if (backlog > router_peak.load()) router_peak.store(backlog);
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // Producers: offer continuously until the run ends; overdrive comes
  // back as typed kOverloaded sheds, outages as Unavailable/FailStop,
  // and the producer retries after a pause in both cases.
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> sheds{0};
  std::vector<std::thread> producers;
  for (std::uint16_t p : kProducers) {
    producers.emplace_back([&, p] {
      while (running.load(std::memory_order_relaxed)) {
        const std::uint64_t sent_ns = NowNs();
        Bytes payload(sizeof(sent_ns));
        std::memcpy(payload.data(), &sent_ns, sizeof(sent_ns));
        Status status;
        {
          std::shared_lock lock(lifecycle_mutex);
          auto sent = harness.Send(ServerId(p), 2, ServerId(kConsumer), 1,
                                   "chaos", std::move(payload));
          status = sent.ok() ? Status::Ok() : sent.status();
        }
        if (status.ok()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          if (options.producer_gap_us > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(options.producer_gap_us));
          }
        } else if (status.code() == StatusCode::kOverloaded) {
          sheds.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        } else {
          // Crashed, fail-stopped or partitioned-off server: back off
          // until the schedule brings it back.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }

  // Restarts a server that is down (crashed) or halted (fail-stop),
  // disarming its store faults first so Boot replays a clean store.
  auto revive = [&](ServerId id) {
    std::unique_lock lock(lifecycle_mutex);
    if (mom::FaultyStore* faulty = harness.faulty_store(id)) faulty->Disarm();
    mom::AgentServer* server = harness.ServerOf(id);
    if (server != nullptr) {
      if (server->health().ok()) return;  // running fine
      ++report.fail_stops;
      harness.Crash(id);
    }
    const Status status = harness.Restart(id);
    if (status.ok()) {
      ++report.restarts;
    } else {
      CMOM_LOG(kError) << "chaos: restart of " << to_string(id)
                       << " failed: " << status;
    }
  };

  // Fault driver: replay the schedule at its virtual timestamps.
  for (const FaultEvent& event : schedule.events()) {
    std::this_thread::sleep_until(start +
                                  std::chrono::milliseconds(event.at_ms));
    // One line per fault event keeps a CI soak log self-describing.
    std::fprintf(stderr, "chaos: t=%llums %s %s\n",
                 static_cast<unsigned long long>(event.at_ms),
                 to_string(event.kind),
                 event.partition_name.empty() ? to_string(event.target).c_str()
                                              : event.partition_name.c_str());
    switch (event.kind) {
      case FaultKind::kCrash: {
        std::unique_lock lock(lifecycle_mutex);
        if (harness.ServerOf(event.target) != nullptr) {
          harness.Crash(event.target);
          ++report.crashes;
        }
        break;
      }
      case FaultKind::kRestart:
        revive(event.target);
        break;
      case FaultKind::kPartition:
        harness.faulty_network()->Partition(event.partition_name,
                                            event.side_a, event.side_b);
        ++report.partitions;
        break;
      case FaultKind::kHeal:
        harness.faulty_network()->Heal(event.partition_name);
        ++report.heals;
        break;
      case FaultKind::kStoreFaultArm:
        harness.faulty_store(event.target)
            ->FailAfterCommits(event.fail_after_commits);
        ++report.store_faults_armed;
        break;
      case FaultKind::kStoreFaultDisarm:
        // The armed fault may or may not have fired (commit count is
        // traffic-dependent); revive() handles both.
        revive(event.target);
        break;
      case FaultKind::kSlowConsumer:
        service_us.store(event.service_us, std::memory_order_relaxed);
        if (event.service_us >= options.slow_service_us) {
          ++report.slow_consumer_phases;
        }
        break;
    }
  }
  std::this_thread::sleep_until(start +
                                std::chrono::milliseconds(options.duration_ms));
  running.store(false);
  for (auto& producer : producers) producer.join();

  // Final heal-everything phase: whatever the schedule left open is
  // closed here so the drain below can reach quiescence.
  harness.faulty_network()->HealAll();
  for (ServerId id : harness.KnownServers()) revive(id);

  harness.WaitQuiescent();
  sampler.join();

  harness.HaltAll();

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.messages_accepted = accepted.load();
  report.overload_sheds = sheds.load();
  report.frames_partitioned = harness.faulty_network()->stats().frames_partitioned;
  for (ServerId id : harness.KnownServers()) {
    if (mom::FaultyStore* faulty = harness.faulty_store(id)) {
      report.store_faults_injected += faulty->stats().faults_injected;
    }
  }

  std::vector<std::uint64_t> samples = recorder.Snapshot();
  std::sort(samples.begin(), samples.end());
  report.latency_samples = samples.size();
  report.latency_p50_ms = PercentileMs(samples, 0.50);
  report.latency_p99_ms = PercentileMs(samples, 0.99);
  report.latency_max_ms =
      samples.empty() ? 0 : static_cast<double>(samples.back()) / 1e6;

  report.peak_consumer_backlog = consumer_peak.load();
  report.peak_router_backlog = router_peak.load();
  // One credit window per uplink bounds what can pile on the router,
  // plus its own downlink window; the slack absorbs in-flight frames
  // the sampler cannot see atomically with the queues.
  report.consumer_backlog_bound = kHighWatermark + 128;
  report.router_backlog_bound =
      (std::size(kProducers) + 1) * kHighWatermark + 128;
  report.bounded_backlog =
      report.peak_consumer_backlog <= report.consumer_backlog_bound &&
      report.peak_router_backlog <= report.router_backlog_bound;

  const auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  const auto causal_report = checker.CheckCausalDelivery(trace);
  report.causal = causal_report.causal();
  if (!report.causal) {
    report.first_violation = causal_report.violations.front().description;
  }
  report.messages_sent = causal_report.messages_sent;
  report.messages_delivered = causal_report.messages_delivered;
  report.exactly_once = checker.CheckExactlyOnce(trace).ok();
  // Zero loss is judged on the durable ledger: every send that
  // committed (and therefore entered the trace) was delivered.
  report.zero_loss =
      report.exactly_once && report.messages_sent == report.messages_delivered;

  if (!options.report_path.empty()) {
    CMOM_RETURN_IF_ERROR(WriteSoakReport(options.report_path, report));
  }
  return {std::move(report)};
}

}  // namespace cmom::chaos
