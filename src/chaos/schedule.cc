#include "chaos/schedule.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"

namespace cmom::chaos {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kStoreFaultArm: return "store-fault-arm";
    case FaultKind::kStoreFaultDisarm: return "store-fault-disarm";
    case FaultKind::kSlowConsumer: return "slow-consumer";
  }
  return "?";
}

namespace {

// Picks a window [start, start+outage] inside the run's middle 80%
// that does not overlap `next_free` for the chosen key.  Returns false
// when the window no longer fits before the quiet tail.
bool PickWindow(Rng& rng, const ScheduleOptions& options,
                std::uint64_t next_free, std::uint64_t* start,
                std::uint64_t* outage) {
  const std::uint64_t margin = options.duration_ms / 10;
  *outage = static_cast<std::uint64_t>(rng.NextInRange(
      static_cast<std::int64_t>(options.min_outage_ms),
      static_cast<std::int64_t>(options.max_outage_ms)));
  const std::uint64_t latest_start =
      options.duration_ms > margin + *outage
          ? options.duration_ms - margin - *outage
          : 0;
  if (latest_start <= margin) return false;
  *start = margin + rng.NextBelow(latest_start - margin);
  if (*start < next_free) *start = next_free;
  return *start + *outage + margin <= options.duration_ms;
}

}  // namespace

Schedule Schedule::Random(std::uint64_t seed,
                          const ScheduleOptions& options) {
  Schedule schedule;
  Rng rng(seed);
  // Per-target end of the last scheduled window (+ a settling gap), so
  // windows on the same server / cut never overlap.
  std::unordered_map<std::uint64_t, std::uint64_t> next_free;
  constexpr std::uint64_t kSettleMs = 50;

  auto reserve = [&](std::uint64_t key, std::uint64_t* start,
                     std::uint64_t* outage) {
    if (!PickWindow(rng, options, next_free[key], start, outage)) {
      return false;
    }
    next_free[key] = *start + *outage + kSettleMs;
    return true;
  };

  for (std::size_t i = 0;
       i < options.crash_count && !options.crashable.empty(); ++i) {
    const ServerId target =
        options.crashable[rng.NextBelow(options.crashable.size())];
    std::uint64_t start = 0;
    std::uint64_t outage = 0;
    if (!reserve(target.value(), &start, &outage)) continue;
    FaultEvent down;
    down.at_ms = start;
    down.kind = FaultKind::kCrash;
    down.target = target;
    FaultEvent up = down;
    up.at_ms = start + outage;
    up.kind = FaultKind::kRestart;
    schedule.events_.push_back(std::move(down));
    schedule.events_.push_back(std::move(up));
  }

  for (std::size_t i = 0; i < options.partition_count && !options.cuts.empty();
       ++i) {
    const std::size_t cut = rng.NextBelow(options.cuts.size());
    std::uint64_t start = 0;
    std::uint64_t outage = 0;
    // Key cuts into a space servers never use (IDs are 16-bit).
    if (!reserve((1ull << 32) + cut, &start, &outage)) continue;
    FaultEvent split;
    split.at_ms = start;
    split.kind = FaultKind::kPartition;
    split.partition_name = "cut" + std::to_string(cut);
    split.side_a = options.cuts[cut].first;
    split.side_b = options.cuts[cut].second;
    FaultEvent heal;
    heal.at_ms = start + outage;
    heal.kind = FaultKind::kHeal;
    heal.partition_name = split.partition_name;
    schedule.events_.push_back(std::move(split));
    schedule.events_.push_back(std::move(heal));
  }

  for (std::size_t i = 0;
       i < options.store_fault_count && !options.store_fault_targets.empty();
       ++i) {
    const ServerId target = options.store_fault_targets[rng.NextBelow(
        options.store_fault_targets.size())];
    std::uint64_t start = 0;
    std::uint64_t outage = 0;
    if (!reserve(target.value(), &start, &outage)) continue;
    FaultEvent arm;
    arm.at_ms = start;
    arm.kind = FaultKind::kStoreFaultArm;
    arm.target = target;
    arm.fail_after_commits = 1 + rng.NextBelow(16);
    FaultEvent disarm;
    disarm.at_ms = start + outage;
    disarm.kind = FaultKind::kStoreFaultDisarm;
    disarm.target = target;
    schedule.events_.push_back(std::move(arm));
    schedule.events_.push_back(std::move(disarm));
  }

  for (std::size_t i = 0; i < options.slow_consumer_count; ++i) {
    std::uint64_t start = 0;
    std::uint64_t outage = 0;
    if (!reserve(1ull << 33, &start, &outage)) continue;
    FaultEvent slow;
    slow.at_ms = start;
    slow.kind = FaultKind::kSlowConsumer;
    slow.service_us = options.slow_service_us;
    FaultEvent fast = slow;
    fast.at_ms = start + outage;
    fast.service_us = options.base_service_us;
    schedule.events_.push_back(std::move(slow));
    schedule.events_.push_back(std::move(fast));
  }

  std::stable_sort(schedule.events_.begin(), schedule.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_ms < b.at_ms;
                   });
  return schedule;
}

}  // namespace cmom::chaos
