// Chaos soak orchestrator.
//
// Runs the overload topology (two producer-edge domains funneling
// through one router into a consumer domain) under sustained traffic
// while a deterministic seeded fault schedule crashes and restarts
// servers, partitions and heals the network, arms storage faults that
// fail-stop their victim, and throttles the consumer.  Producers embed
// send timestamps in payloads so the consumer measures end-to-end
// delivery latency through the storm.
//
// After the schedule closes, the orchestrator heals everything (every
// partition removed, every store fault disarmed, every crashed or
// fail-stopped server restarted), drains the bus to quiescence, and
// runs the offline oracle: causal delivery, exactly-once, zero loss,
// and bounded backlog.  The verdicts plus latency percentiles and
// fault counters come back as a SoakReport (optionally written as
// CHAOS_soak.json).
#pragma once

#include <cstdint>
#include <string>

#include "chaos/report.h"
#include "chaos/schedule.h"
#include "clocks/causal_core.h"
#include "common/status.h"

namespace cmom::chaos {

struct ChaosSoakOptions {
  // Master seed: schedule, network faults and store faults all derive
  // from it.  Replay a failing soak with CMOM_SEED=<seed>.
  std::uint64_t seed = 1;
  std::uint64_t duration_ms = 2500;
  // Fault schedule shape (targets and cuts are fixed by the topology).
  std::size_t crash_count = 2;
  std::size_t partition_count = 2;
  std::size_t store_fault_count = 1;
  std::size_t slow_consumer_count = 1;
  std::uint64_t min_outage_ms = 100;
  std::uint64_t max_outage_ms = 400;
  // Consumer service time, nominal and throttled.
  std::uint64_t base_service_us = 100;
  std::uint64_t slow_service_us = 1500;
  // Pause between a producer's sends (0 = offer as fast as the
  // admission layer accepts).
  std::uint64_t producer_gap_us = 50;
  // Causal-delivery core every domain runs under the storm.
  clocks::CausalCoreKind causal_core = clocks::CausalCoreKind::kMatrix;
  // When non-empty, the report is also written here as JSON.
  std::string report_path;
};

// Runs one soak.  A non-ok status means the soak could not run (setup
// failure); invariant violations are reported in SoakReport, not here.
[[nodiscard]] Result<SoakReport> RunChaosSoak(const ChaosSoakOptions& options);

}  // namespace cmom::chaos
