// Chaos soak report: what was injected, what the bus did, and whether
// every invariant held.  Written as CHAOS_soak.json in the same style
// as the BENCH_*.json artifacts so CI uploads and `momtool chaos`
// pretty-prints it.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace cmom::chaos {

struct SoakReport {
  std::uint64_t seed = 0;
  std::uint64_t duration_ms = 0;
  double wall_seconds = 0;

  // Traffic.  `accepted` counts producer sends the admission layer took
  // (informational: work queued on a server that then crashed is
  // legitimately lost before its send committed).  The authoritative
  // zero-loss ledger is the trace: every committed send must be
  // delivered exactly once.
  std::uint64_t messages_accepted = 0;
  std::uint64_t messages_sent = 0;       // committed sends in the trace
  std::uint64_t messages_delivered = 0;  // deliveries in the trace
  std::uint64_t overload_sheds = 0;      // kOverloaded rejections

  // End-to-end delivery latency at the consumer (send-stamp embedded in
  // the payload), in milliseconds.
  std::uint64_t latency_samples = 0;
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
  double latency_max_ms = 0;

  // Peak durable backlogs sampled while the storm ran, against the
  // credit-window bounds.
  std::uint64_t peak_consumer_backlog = 0;
  std::uint64_t peak_router_backlog = 0;
  std::uint64_t consumer_backlog_bound = 0;
  std::uint64_t router_backlog_bound = 0;

  // Faults injected.
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;
  std::uint64_t store_faults_armed = 0;
  std::uint64_t store_faults_injected = 0;  // commits actually failed
  std::uint64_t fail_stops = 0;             // servers that halted on them
  std::uint64_t frames_partitioned = 0;
  std::uint64_t slow_consumer_phases = 0;

  // Invariant verdicts.
  bool causal = false;
  bool exactly_once = false;
  bool zero_loss = false;
  bool bounded_backlog = false;
  std::string first_violation;  // empty when causal

  [[nodiscard]] bool ok() const {
    return causal && exactly_once && zero_loss && bounded_backlog;
  }
};

// Writes the report to `path` (JSON).
[[nodiscard]] Status WriteSoakReport(const std::string& path,
                                     const SoakReport& report);

}  // namespace cmom::chaos
