#include "chaos/report.h"

#include <cinttypes>
#include <cstdio>

namespace cmom::chaos {

Status WriteSoakReport(const std::string& path, const SoakReport& r) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::Unavailable("cannot write " + path);
  }
  std::fprintf(out, "{\n  \"bench\": \"chaos_soak\",\n");
  std::fprintf(out, "  \"seed\": %" PRIu64 ",\n", r.seed);
  std::fprintf(out, "  \"duration_ms\": %" PRIu64 ",\n", r.duration_ms);
  std::fprintf(out, "  \"wall_seconds\": %.3f,\n", r.wall_seconds);
  std::fprintf(out,
               "  \"traffic\": {\"accepted\": %" PRIu64 ", \"sent\": %" PRIu64
               ", \"delivered\": %" PRIu64 ", \"overload_sheds\": %" PRIu64
               "},\n",
               r.messages_accepted, r.messages_sent, r.messages_delivered,
               r.overload_sheds);
  std::fprintf(out,
               "  \"latency_ms\": {\"samples\": %" PRIu64
               ", \"p50\": %.3f, \"p99\": %.3f, \"max\": %.3f},\n",
               r.latency_samples, r.latency_p50_ms, r.latency_p99_ms,
               r.latency_max_ms);
  std::fprintf(out,
               "  \"backlog\": {\"peak_consumer\": %" PRIu64
               ", \"consumer_bound\": %" PRIu64 ", \"peak_router\": %" PRIu64
               ", \"router_bound\": %" PRIu64 "},\n",
               r.peak_consumer_backlog, r.consumer_backlog_bound,
               r.peak_router_backlog, r.router_backlog_bound);
  std::fprintf(out,
               "  \"faults\": {\"crashes\": %" PRIu64 ", \"restarts\": %" PRIu64
               ", \"partitions\": %" PRIu64 ", \"heals\": %" PRIu64
               ", \"store_faults_armed\": %" PRIu64
               ", \"store_faults_injected\": %" PRIu64
               ", \"fail_stops\": %" PRIu64 ", \"frames_partitioned\": %" PRIu64
               ", \"slow_consumer_phases\": %" PRIu64 "},\n",
               r.crashes, r.restarts, r.partitions, r.heals,
               r.store_faults_armed, r.store_faults_injected, r.fail_stops,
               r.frames_partitioned, r.slow_consumer_phases);
  std::fprintf(out,
               "  \"invariants\": {\"causal\": %s, \"exactly_once\": %s, "
               "\"zero_loss\": %s, \"bounded_backlog\": %s, \"all_ok\": %s},\n",
               r.causal ? "true" : "false", r.exactly_once ? "true" : "false",
               r.zero_loss ? "true" : "false",
               r.bounded_backlog ? "true" : "false", r.ok() ? "true" : "false");
  std::fprintf(out, "  \"first_violation\": \"%s\"\n}\n",
               r.first_violation.c_str());
  std::fclose(out);
  return Status::Ok();
}

}  // namespace cmom::chaos
