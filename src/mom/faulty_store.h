// Storage fault injection (the disk-side counterpart of FaultyNetwork).
//
// FaultyStore wraps any Store and injects failures on the durability
// path: probabilistic Commit() failures from a seeded RNG (an
// ENOSPC-style refusal before anything reaches the inner store),
// fail-at-Nth-commit crash points armed by a chaos schedule, and write
// poisoning (a Put/Delete is accepted -- realistic buffered-I/O
// semantics -- but the transaction it belongs to fails at Commit).
//
// An injected failure leaves the inner store exactly at its previous
// committed state: the inner Commit is never called, and the staged
// operations stay staged until the server's fail-stop path rolls them
// back.  That makes the decorator the test bed for the AgentServer
// fail-stop contract -- after a commit failure the server must halt and
// a restart over the same (inner) store must recover the last durable
// image, bit for bit.
//
// Thread safety: the chaos orchestrator arms and disarms faults from
// its own thread while the server commits under its lock, so every
// member is guarded by an internal mutex.
#pragma once

#include <cstdint>
#include <mutex>

#include "common/rng.h"
#include "mom/store.h"

namespace cmom::mom {

struct FaultyStoreOptions {
  // Probability that a Commit fails before touching the inner store.
  double commit_failure_probability = 0.0;
  // Probability that a Put/Delete poisons the current transaction: the
  // write is staged normally but the enclosing Commit fails.  Models a
  // buffered write that only surfaces its error at flush time.
  double write_failure_probability = 0.0;
  std::uint64_t seed = 1;
};

struct FaultyStoreStats {
  std::uint64_t commits = 0;          // successful inner commits
  std::uint64_t faults_injected = 0;  // commits failed by injection
};

class FaultyStore final : public Store {
 public:
  // `inner` must outlive this decorator.
  explicit FaultyStore(Store& inner, FaultyStoreOptions options = {});

  void Put(std::string_view key, Bytes value) override;
  void Delete(std::string_view key) override;
  [[nodiscard]] std::optional<Bytes> Get(std::string_view key) override;
  [[nodiscard]] std::vector<std::string> Keys(std::string_view prefix) override;
  Status Commit() override;
  void Rollback() override;
  Status Checkpoint() override;
  [[nodiscard]] std::uint64_t last_commit_bytes() const override;
  [[nodiscard]] std::uint64_t total_bytes_written() const override;
  [[nodiscard]] std::uint64_t sync_latency_ns() const override;

  // Crash point: the Nth Commit from now fails (n = 1 means the very
  // next one).  One-shot; overwrites any previously armed countdown.
  void FailAfterCommits(std::uint64_t n);
  // Clears every armed and probabilistic fault (schedule "heal").
  void Disarm();

  [[nodiscard]] FaultyStoreStats stats() const;

 private:
  Store* inner_;
  mutable std::mutex mutex_;
  FaultyStoreOptions options_;
  Rng rng_;
  // Commits until the armed crash point fires (0 = not armed).
  std::uint64_t fail_countdown_ = 0;
  // Set by a poisoned write; fails the next Commit, cleared by
  // Commit/Rollback with the transaction it poisoned.
  bool txn_poisoned_ = false;
  FaultyStoreStats stats_;
};

}  // namespace cmom::mom
