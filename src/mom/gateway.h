// Client gateway: many lightweight client sessions fanning into one
// agent server over a single multiplexed causal link.
//
// The paper's scalability story (Sections 6-7) counts causal
// participants -- every server in a domain pays matrix-clock and
// hold-back cost for every other member.  Millions of end users can
// therefore never be first-class servers; they attach here instead.  A
// GatewayServer owns a listen socket on the shared epoll reactor and a
// table of client sessions; each session authenticates to one
// server-local agent id whose agent is a stateless proxy that relays
// bus deliveries back out over the client's connection.  The domain
// topology sees exactly one causal participant (the gateway's
// AgentServer); clients cost one epoll registration, one session-table
// entry and one proxy agent each.
//
// Client wire protocol (loopback/LAN, host byte order like the server
// frames): [u32 length][u8 type][body], length = 1 + body size.
//   kHello      c->g  u32 agent_local        claim a session agent id
//   kWelcome    g->c  u32 agent_local        bind confirmed
//   kAuthReject g->c  u8 reason              then the gateway closes
//   kClientSend c->g  u16 dest_server, u32 dest_local,
//                     u16 subject_len, subject, payload
//   kDeliver    g->c  u16 src_server, u32 src_local,
//                     u16 subject_len, subject, payload
//   kSendReject g->c  u8 reason              bus refused the send
//
// Threading: session sockets are distributed over the reactor shards
// (PickShard per accept), so unlike a server endpoint the gateway
// genuinely runs its client I/O in parallel.  Bus deliveries arrive on
// engine threads (ProxyAgent::React) and are queued onto the session's
// outbound buffer; the owning shard flushes with vectored writes.
//
// Lifecycle: construct against a not-yet-booted AgentServer, call
// AttachSessionAgents() BEFORE server.Boot() (agents must be attached
// pre-boot), Start() after it.  Stop() -- or the destructor -- blocks
// until no session callback can run again.  The gateway must not be
// destroyed while the server can still run reactions (Shutdown/Halt
// the server first, or Stop() the gateway: after Stop, proxy
// deliveries are dropped and counted, never dereferenced).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "mom/agent_server.h"
#include "net/reactor.h"

namespace cmom::mom {

struct GatewayOptions {
  // Port of the gateway's client listen socket.
  std::uint16_t listen_port = 0;
  // Session agents occupy server-local ids
  // [first_session_agent, first_session_agent + attached count).
  std::uint32_t first_session_agent = 1;
  // Bytes buffered toward one client before deliveries are dropped
  // (the client is slow; bus-level retransmission does NOT cover the
  // client hop, so the drop is counted and visible).
  std::size_t session_outbox_max_bytes = 1ull << 20;
  // listen(2) backlog; connection storms (bench ramps, churn tests)
  // need more than the kernel default.
  int listen_backlog = 512;
  bool tcp_nodelay = true;
  int so_rcvbuf = 0;
  int so_sndbuf = 0;
};

struct GatewayStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t sessions_active = 0;  // gauge
  std::uint64_t auth_failures = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t client_sends = 0;        // accepted into the bus
  std::uint64_t client_send_rejects = 0; // bus refused (overload, fence)
  std::uint64_t client_deliveries = 0;   // queued toward a client
  std::uint64_t delivery_drops = 0;      // session outbox overflow/unbound
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class GatewayServer {
 public:
  // `server` must outlive the gateway; `reactor` is typically
  // TcpNetwork::reactor() so the whole process keeps one I/O pool.
  GatewayServer(AgentServer& server, GatewayOptions options,
                std::shared_ptr<net::Reactor> reactor);
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  // Attaches `count` stateless proxy agents under local ids
  // [first_session_agent, first_session_agent + count).  Must run
  // before server.Boot(); may be called once.
  void AttachSessionAgents(std::size_t count);

  // Binds and starts accepting clients.  Call after server.Boot().
  [[nodiscard]] Status Start();

  // Closes every session and the listener; blocks until no gateway
  // callback can run again.  Idempotent.
  void Stop();

  [[nodiscard]] GatewayStats stats() const;

  // Per-session snapshot for momtool / tests.
  struct SessionInfo {
    std::uint32_t agent_local = 0;  // 0 = not yet authenticated
    std::uint64_t sends = 0;
    std::uint64_t deliveries = 0;
    std::size_t outbox_bytes = 0;
  };
  [[nodiscard]] std::vector<SessionInfo> sessions() const;

 private:
  class ProxyAgent;
  struct Session;

  void Accept();
  void OnSessionEvent(const std::shared_ptr<Session>& session,
                      std::uint32_t events);
  void ParseSession(const std::shared_ptr<Session>& session);
  // Handles one complete client frame; returns false on a protocol
  // violation (the caller closes the session).
  bool HandleClientFrame(const std::shared_ptr<Session>& session,
                         const std::uint8_t* body, std::size_t size);
  void QueueToClient(const std::shared_ptr<Session>& session, Bytes frame);
  void FlushSession(const std::shared_ptr<Session>& session);
  void CloseSession(const std::shared_ptr<Session>& session);
  // ProxyAgent -> session relay (engine thread).
  void OnBusDelivery(std::uint32_t agent_local, const Message& message);

  AgentServer& server_;
  const GatewayOptions options_;
  const std::shared_ptr<net::Reactor> reactor_;

  mutable std::mutex mutex_;
  bool started_ = false;
  bool stopping_ = false;
  std::size_t attached_ = 0;
  net::ScopedFd listen_fd_;
  std::uint64_t listen_token_ = 0;
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::unordered_map<std::uint32_t, std::shared_ptr<Session>> bindings_;
  GatewayStats stats_;
};

}  // namespace cmom::mom
