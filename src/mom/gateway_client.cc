#include "mom/gateway_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <utility>

#include "common/buffer_pool.h"
#include "mom/gateway_wire.h"

namespace cmom::mom {

using namespace gwire;  // NOLINT: frame types + byte helpers

namespace {
constexpr std::size_t kMaxIovPerFlush = 64;
}  // namespace

// Handshake state machine: kIdle -> kConnecting -> kHelloSent ->
// kBound, with kFailed/kClosed terminal.  `state` is guarded by the
// pool mutex; rx is shard-thread-only; the out queue is shared under
// out_mutex (same discipline as the server side, and the same lock
// order rule: pool mutex and out_mutex are never held together).
struct GatewayClientPool::Session {
  enum State : std::uint8_t {
    kIdle,
    kConnecting,
    kHelloSent,
    kBound,
    kFailed,
    kClosed,
  };

  std::size_t index = 0;
  std::size_t shard = 0;
  net::ScopedFd fd;
  std::uint64_t token = 0;
  State state = kIdle;
  Bytes rx;  // shard thread only

  std::mutex out_mutex;
  std::deque<Bytes> out;
  std::size_t out_offset = 0;
  std::size_t out_bytes = 0;
  bool flush_pending = false;
  bool closed = false;
};

GatewayClientPool::GatewayClientPool(GatewayClientOptions options)
    : options_(options),
      reactor_(std::make_shared<net::Reactor>(
          options.reactor_threads == 0 ? 1 : options.reactor_threads)) {
  sessions_.reserve(options_.sessions);
  for (std::size_t i = 0; i < options_.sessions; ++i) {
    auto session = std::make_shared<Session>();
    session->index = i;
    sessions_.push_back(std::move(session));
  }
}

GatewayClientPool::~GatewayClientPool() { Stop(); }

void GatewayClientPool::Start() {
  std::vector<std::shared_ptr<Session>> first;
  {
    std::lock_guard lock(mutex_);
    if (started_) return;
    started_ = true;
    while (next_start_ < sessions_.size() &&
           next_start_ < options_.connect_batch) {
      first.push_back(sessions_[next_start_++]);
    }
  }
  for (auto& session : first) StartConnect(session);
}

void GatewayClientPool::MaybeStartNext() {
  std::shared_ptr<Session> next;
  {
    std::lock_guard lock(mutex_);
    if (stopping_ || next_start_ >= sessions_.size()) return;
    next = sessions_[next_start_++];
  }
  StartConnect(next);
}

void GatewayClientPool::StartConnect(const std::shared_ptr<Session>& session) {
  net::ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  bool failed = !fd.valid();
  if (!failed) {
    net::SetNonBlocking(fd.get());
    if (options_.tcp_nodelay) {
      int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    if (options_.so_rcvbuf > 0) {
      ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &options_.so_rcvbuf,
                   sizeof(options_.so_rcvbuf));
    }
    if (options_.so_sndbuf > 0) {
      ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    const int rc =
        ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    failed = rc != 0 && errno != EINPROGRESS;
  }
  if (failed) {
    {
      std::lock_guard lock(mutex_);
      session->state = Session::kFailed;
      ++stats_.connect_failures;
    }
    bound_cv_.notify_all();
    MaybeStartNext();
    return;
  }
  const std::size_t shard = reactor_->PickShard();
  std::uint64_t token = 0;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    session->fd = std::move(fd);
    session->shard = shard;
    session->state = Session::kConnecting;
    {
      std::lock_guard out_lock(session->out_mutex);
      session->closed = false;
      session->rx.clear();
    }
  }
  token = reactor_->Register(
      shard, session->fd.get(), [this, session](std::uint32_t events) {
        OnSessionEvent(session, events);
      });
  if (token == 0) {
    std::lock_guard lock(mutex_);
    session->state = Session::kFailed;
    session->fd.Close();
    ++stats_.connect_failures;
    bound_cv_.notify_all();
    return;
  }
  bool undo = false;
  {
    std::lock_guard lock(mutex_);
    if (stopping_ || session->state == Session::kFailed ||
        session->state == Session::kClosed) {
      // Raced Stop() or an instant failure event that fired before the
      // token landed; undo here (never under mutex_ -- Deregister
      // blocks on the shard, whose callbacks take mutex_).
      undo = true;
    } else {
      session->token = token;
    }
  }
  if (undo) {
    reactor_->Deregister(token);
    session->fd.Close();
  }
}

void GatewayClientPool::OnSessionEvent(const std::shared_ptr<Session>& session,
                                       std::uint32_t events) {
  // Connect completion first: EPOLLOUT (or an error) on a connecting
  // socket resolves the dial before any traffic concerns apply.
  {
    std::unique_lock lock(mutex_);
    if (session->state == Session::kConnecting) {
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(session->fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len);
      if ((events & (EPOLLERR | EPOLLHUP)) != 0 || err != 0) {
        ++stats_.connect_failures;
        lock.unlock();
        CloseSession(session, /*failed=*/true);
        MaybeStartNext();
        return;
      }
      if ((events & EPOLLOUT) == 0) return;  // still dialing
      session->state = Session::kHelloSent;
      lock.unlock();
      Bytes hello = BeginFrame(kHello, 4);
      AppendU32(hello, options_.first_agent +
                           static_cast<std::uint32_t>(session->index));
      FinishFrame(hello);
      QueueFrame(session, std::move(hello));
      return;
    }
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseSession(session, /*failed=*/false);
    return;
  }
  if ((events & (EPOLLIN | EPOLLRDHUP)) != 0) {
    std::uint64_t received = 0;
    bool peer_closed = false;
    while (true) {
      std::uint8_t chunk[16 * 1024];
      const ssize_t n =
          ::recv(session->fd.get(), chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) {
        session->rx.insert(session->rx.end(), chunk, chunk + n);
        received += static_cast<std::uint64_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      peer_closed = true;
      break;
    }
    if (received > 0) {
      {
        std::lock_guard lock(mutex_);
        stats_.bytes_in += received;
      }
      ParseSession(session);
    }
    if (peer_closed) {
      CloseSession(session, /*failed=*/false);
      return;
    }
  }
  if ((events & EPOLLOUT) != 0) FlushSession(session);
}

void GatewayClientPool::ParseSession(const std::shared_ptr<Session>& session) {
  Bytes& rx = session->rx;
  std::size_t offset = 0;
  bool violation = false;
  while (rx.size() - offset >= kFrameHeader) {
    const std::uint32_t length = ReadU32(rx.data() + offset);
    if (length < 1 || length > kMaxClientFrame) {
      violation = true;
      break;
    }
    if (rx.size() - offset - 4 < length) break;
    if (!HandleFrame(session, rx.data() + offset + 4, length)) {
      violation = true;
      break;
    }
    offset += 4 + length;
  }
  rx.erase(rx.begin(), rx.begin() + static_cast<std::ptrdiff_t>(offset));
  if (violation) {
    {
      std::lock_guard lock(mutex_);
      ++stats_.protocol_errors;
    }
    CloseSession(session, /*failed=*/true);
  }
}

bool GatewayClientPool::HandleFrame(const std::shared_ptr<Session>& session,
                                    const std::uint8_t* frame,
                                    std::size_t size) {
  const std::uint8_t type = frame[0];
  const std::uint8_t* body = frame + 1;
  const std::size_t body_size = size - 1;
  switch (type) {
    case kWelcome: {
      if (body_size != 4) return false;
      {
        std::lock_guard lock(mutex_);
        if (session->state == Session::kHelloSent) {
          session->state = Session::kBound;
          ++stats_.bound;
        }
      }
      bound_cv_.notify_all();
      MaybeStartNext();
      return true;
    }
    case kAuthReject: {
      {
        std::lock_guard lock(mutex_);
        ++stats_.auth_rejects;
      }
      bound_cv_.notify_all();
      CloseSession(session, /*failed=*/true);
      MaybeStartNext();
      return true;  // close already handled
    }
    case kSendReject: {
      std::lock_guard lock(mutex_);
      ++stats_.send_rejects;
      return true;
    }
    case kDeliver: {
      if (body_size < 8) return false;
      const std::uint16_t src_server = ReadU16(body);
      const std::uint32_t src_local = ReadU32(body + 2);
      const std::uint16_t subject_len = ReadU16(body + 6);
      if (body_size < 8ull + subject_len) return false;
      {
        std::lock_guard lock(mutex_);
        ++stats_.deliveries;
      }
      if (on_delivery_) {
        on_delivery_(session->index, src_server, src_local,
                     std::string_view(
                         reinterpret_cast<const char*>(body + 8), subject_len),
                     body + 8 + subject_len, body_size - 8 - subject_len);
      }
      return true;
    }
    default:
      return false;
  }
}

bool GatewayClientPool::Send(std::size_t session_index,
                             std::uint16_t dest_server,
                             std::uint32_t dest_local, std::string_view subject,
                             const void* payload, std::size_t payload_size) {
  if (session_index >= sessions_.size()) return false;
  const std::shared_ptr<Session>& session = sessions_[session_index];
  {
    std::lock_guard lock(mutex_);
    if (session->state != Session::kBound) return false;
  }
  Bytes frame = BeginFrame(kClientSend, 8 + subject.size() + payload_size);
  AppendU16(frame, dest_server);
  AppendU32(frame, dest_local);
  AppendU16(frame, static_cast<std::uint16_t>(subject.size()));
  const std::size_t at = frame.size();
  frame.resize(at + subject.size() + payload_size);
  std::memcpy(frame.data() + at, subject.data(), subject.size());
  if (payload_size > 0) {
    std::memcpy(frame.data() + at + subject.size(), payload, payload_size);
  }
  FinishFrame(frame);
  bool kick = false;
  {
    std::lock_guard out_lock(session->out_mutex);
    if (session->closed ||
        session->out_bytes + frame.size() > options_.session_outbox_max_bytes) {
      BufferPool::Release(std::move(frame));
      return false;
    }
    session->out_bytes += frame.size();
    session->out.push_back(std::move(frame));
    if (!session->flush_pending) {
      session->flush_pending = true;
      kick = true;
    }
  }
  if (kick) {
    reactor_->Post(session->shard,
                   [this, session] { FlushSession(session); });
  }
  return true;
}

void GatewayClientPool::QueueFrame(const std::shared_ptr<Session>& session,
                                   Bytes frame) {
  bool kick = false;
  {
    std::lock_guard out_lock(session->out_mutex);
    if (session->closed) {
      BufferPool::Release(std::move(frame));
      return;
    }
    session->out_bytes += frame.size();
    session->out.push_back(std::move(frame));
    if (!session->flush_pending) {
      session->flush_pending = true;
      kick = true;
    }
  }
  if (kick) {
    reactor_->Post(session->shard,
                   [this, session] { FlushSession(session); });
  }
}

void GatewayClientPool::FlushSession(const std::shared_ptr<Session>& session) {
  std::uint64_t written_total = 0;
  bool close = false;
  {
    std::lock_guard out_lock(session->out_mutex);
    session->flush_pending = false;
    if (session->closed) return;
    while (!session->out.empty()) {
      std::array<iovec, kMaxIovPerFlush> iov;
      std::size_t iov_count = 0;
      for (auto it = session->out.begin();
           it != session->out.end() && iov_count < kMaxIovPerFlush; ++it) {
        const std::size_t skip = iov_count == 0 ? session->out_offset : 0;
        iov[iov_count].iov_base = it->data() + skip;
        iov[iov_count].iov_len = it->size() - skip;
        ++iov_count;
      }
      msghdr msg{};
      msg.msg_iov = iov.data();
      msg.msg_iovlen = iov_count;
      const ssize_t n = ::sendmsg(session->fd.get(), &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close = true;
        break;
      }
      written_total += static_cast<std::uint64_t>(n);
      std::size_t written = static_cast<std::size_t>(n);
      while (written > 0 && !session->out.empty()) {
        Bytes& front = session->out.front();
        const std::size_t remaining = front.size() - session->out_offset;
        if (written < remaining) {
          session->out_offset += written;
          written = 0;
          break;
        }
        written -= remaining;
        session->out_bytes -= front.size();
        session->out_offset = 0;
        BufferPool::Release(std::move(front));
        session->out.pop_front();
      }
    }
  }
  if (written_total > 0) {
    std::lock_guard lock(mutex_);
    stats_.bytes_out += written_total;
  }
  if (close) CloseSession(session, /*failed=*/false);
}

void GatewayClientPool::CloseSession(const std::shared_ptr<Session>& session,
                                     bool failed) {
  {
    std::lock_guard out_lock(session->out_mutex);
    if (session->closed) return;
    session->closed = true;
    session->out.clear();
    session->out_bytes = 0;
    session->out_offset = 0;
  }
  std::uint64_t token = 0;
  {
    std::lock_guard lock(mutex_);
    token = std::exchange(session->token, 0);
    if (session->state == Session::kBound) --stats_.bound;
    session->state = failed ? Session::kFailed : Session::kClosed;
  }
  if (token != 0) {
    reactor_->Deregister(token);
    session->fd.Close();
  }
  // token == 0 with an open fd: StartConnect is still in flight (the
  // registration fired before the token landed).  Its undo path owns
  // the deregistration and fd close -- closing here would free the fd
  // number for reuse while the registration still points at it.
  bound_cv_.notify_all();
}

void GatewayClientPool::Close(std::size_t session_index) {
  if (session_index >= sessions_.size()) return;
  CloseSession(sessions_[session_index], /*failed=*/false);
}

void GatewayClientPool::Reconnect(std::size_t session_index) {
  if (session_index >= sessions_.size()) return;
  const std::shared_ptr<Session>& session = sessions_[session_index];
  {
    std::lock_guard lock(mutex_);
    if (stopping_ || session->token != 0) return;  // still open
    session->state = Session::kIdle;
  }
  StartConnect(session);
}

bool GatewayClientPool::WaitAllBound(std::uint64_t timeout_ns) {
  std::unique_lock lock(mutex_);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout_ns);
  return bound_cv_.wait_until(lock, deadline, [&] {
    return stats_.bound == sessions_.size() || stats_.connect_failures > 0 ||
           stats_.auth_rejects > 0;
  }) && stats_.bound == sessions_.size();
}

void GatewayClientPool::Stop() {
  std::vector<std::shared_ptr<Session>> open;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    open = sessions_;
  }
  for (auto& session : open) {
    std::uint64_t token = 0;
    {
      std::lock_guard out_lock(session->out_mutex);
      session->closed = true;
      session->out.clear();
      session->out_bytes = 0;
    }
    {
      std::lock_guard lock(mutex_);
      token = std::exchange(session->token, 0);
      if (session->state == Session::kBound) --stats_.bound;
      session->state = Session::kClosed;
    }
    if (token != 0) {
      reactor_->Deregister(token);
      session->fd.Close();
    }
    // token == 0 with an open fd: a StartConnect is mid-flight; its
    // undo path (which observes stopping_) deregisters and closes.
  }
  // Drain barrier: posted flush tasks may still reference the pool.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t pending = 0;
  for (std::size_t shard = 0; shard < reactor_->shard_count(); ++shard) {
    std::unique_lock lock(done_mutex);
    ++pending;
    const bool posted = reactor_->Post(shard, [&] {
      std::lock_guard inner(done_mutex);
      --pending;
      done_cv.notify_one();
    });
    if (!posted) --pending;
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return pending == 0; });
}

GatewayClientStats GatewayClientPool::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace cmom::mom
