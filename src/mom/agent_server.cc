#include "mom/agent_server.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <future>
#include <utility>

#include "common/buffer_pool.h"
#include "common/log.h"
#include "flow/admission.h"

namespace cmom::mom {

namespace {
constexpr std::string_view kMetaKey = "meta";
// Legacy monolithic blobs (PersistMode::kFullImage).  A store written
// under these keys is migrated to the per-entry schema once, on the
// first incremental Boot.
constexpr std::string_view kLegacyClocksKey = "channel/clocks";
constexpr std::string_view kLegacyQueueOutKey = "channel/qout";
constexpr std::string_view kLegacyQueueInKey = "engine/qin";
constexpr std::string_view kLegacyHoldbackKey = "channel/holdback";
// Incremental per-entry schema.  Fixed-width hex suffixes keep
// Store::Keys(prefix) ordering aligned with numeric ordering.
constexpr std::string_view kClockKeyPrefix = "clk/";
// Written by the control plane (control/epoch.h owns the record format:
// varint epoch, then the config text).  The server only reads the
// leading varint, to refuse booting against a store whose epoch
// disagrees with its options -- mom must not depend on control.
constexpr std::string_view kEpochCurrentKey = "epoch/current";
constexpr std::string_view kQueueOutKeyPrefix = "qout/";
constexpr std::string_view kQueueInKeyPrefix = "qin/";
constexpr std::string_view kHoldKeyPrefix = "hold/";
constexpr std::string_view kAgentKeyPrefix = "agent/";
// Forwarded messages parked in the router's DRR staging queue
// (src/flow): written in the same transaction as the delivery that
// produced them, deleted when ForwardStep stamps them onward.
constexpr std::string_view kFwdKeyPrefix = "fwd/";

std::string AgentKey(std::uint32_t local_id) {
  return std::string(kAgentKeyPrefix) + std::to_string(local_id);
}

void AppendHex(std::string& out, std::uint64_t value, int digits) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%0*llx", digits,
                static_cast<unsigned long long>(value));
  out += buf;
}

std::string ClockKey(std::size_t deployment_index) {
  std::string key(kClockKeyPrefix);
  AppendHex(key, deployment_index, 4);
  return key;
}

std::string OutKey(MessageId id) {
  std::string key(kQueueOutKeyPrefix);
  AppendHex(key, id.origin.value(), 4);
  AppendHex(key, id.seq, 16);
  return key;
}

std::string InKey(std::uint64_t seq) {
  std::string key(kQueueInKeyPrefix);
  AppendHex(key, seq, 16);
  return key;
}

std::string FwdKey(std::uint64_t seq) {
  std::string key(kFwdKeyPrefix);
  AppendHex(key, seq, 16);
  return key;
}

std::string HoldKey(std::size_t deployment_index, MessageId id) {
  std::string key(kHoldKeyPrefix);
  AppendHex(key, deployment_index, 4);
  key += '/';
  AppendHex(key, id.origin.value(), 4);
  AppendHex(key, id.seq, 16);
  return key;
}

Result<std::uint64_t> ParseHexSuffix(std::string_view key,
                                     std::string_view prefix) {
  std::uint64_t value = 0;
  std::string_view digits = key.substr(prefix.size());
  if (digits.empty()) return Status::DataLoss("empty store key suffix");
  for (char c : digits) {
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return Status::DataLoss("bad hex digit in store key");
    }
    value = (value << 4) | nibble;
  }
  return value;
}
}  // namespace

// Buffers the sends an agent makes during React; they are committed
// atomically with the reaction by the Engine.
class ReactionContextImpl final : public ReactionContext {
 public:
  ReactionContextImpl(AgentServer* server, net::Runtime* runtime, AgentId self,
                      std::vector<Message>* sends,
                      std::function<Message(AgentId, AgentId, std::string,
                                            Bytes)>
                          make_message,
                      std::function<void(std::string, const Message&)>
                          dead_letter)
      : server_(server),
        runtime_(runtime),
        self_(self),
        sends_(sends),
        make_message_(std::move(make_message)),
        dead_letter_(std::move(dead_letter)) {
    (void)server_;
  }

  [[nodiscard]] AgentId self() const override { return self_; }

  void Send(AgentId to, std::string subject, Bytes payload) override {
    sends_->push_back(
        make_message_(self_, to, std::move(subject), std::move(payload)));
  }

  [[nodiscard]] std::uint64_t NowNs() const override {
    return runtime_->NowNs();
  }

  void DeadLetter(std::string reason, const Message& original) override {
    dead_letter_(std::move(reason), original);
  }

 private:
  AgentServer* server_;
  net::Runtime* runtime_;
  AgentId self_;
  std::vector<Message>* sends_;
  std::function<Message(AgentId, AgentId, std::string, Bytes)> make_message_;
  std::function<void(std::string, const Message&)> dead_letter_;
};

AgentServer::AgentServer(const domains::Deployment& deployment, ServerId self,
                         net::Endpoint* endpoint, net::Runtime* runtime,
                         Store* store, AgentServerOptions options)
    : deployment_(&deployment),
      self_(self),
      endpoint_(endpoint),
      runtime_(runtime),
      store_(store),
      options_(options),
      forward_stage_(options.flow.drr_quantum) {
  assert(endpoint_->self() == self_);
}

AgentServer::~AgentServer() { Halt(); }

void AgentServer::Halt() {
  Shutdown();
  // Tear down the shard workers first: swap the executor out under
  // mutex_ (any later dispatch falls back to the inline engine path),
  // then destroy it unlocked -- the destructor joins each lane after
  // its current task, and a worker blocked on mutex_ in
  // ScheduleReactionCommit gets through (and no-ops via shutdown_)
  // instead of deadlocking against us.  Results never committed stay
  // covered by their durable qin/ entries.
  std::unique_ptr<net::Executor> executor;
  {
    std::lock_guard lock(mutex_);
    executor.swap(executor_);
  }
  executor.reset();
  // Bar pending runtime callbacks (and wait out any mid-flight one,
  // including a retransmission currently handing frames to the
  // endpoint) before the members they reference go away.
  std::lock_guard hold(life_->mutex);
  life_->alive = false;
}

void AgentServer::Shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (shutdown_) return;  // a caller may destroy the endpoint after
    shutdown_ = true;       // an explicit Halt; don't touch it again
  }
  // Drop frames arriving after shutdown; the durable state in the
  // store is what the next Boot resumes from.  Timer callbacks keep
  // firing until destruction but become no-ops via the shutdown_ check
  // in Post.  The swap must happen OUTSIDE mutex_: it blocks until any
  // in-flight dispatch of the old handler has returned (that dispatch
  // may itself be waiting on mutex_ to observe shutdown_), and once it
  // comes back no transport thread can reach this object again --
  // which is what lets ~AgentServer free it mid-run (server crash).
  endpoint_->SetReceiveHandler([](ServerId, Bytes) {});
}

AgentId AgentServer::AttachAgent(std::uint32_t local_id,
                                 std::unique_ptr<Agent> agent) {
  std::lock_guard lock(mutex_);
  assert(!booted_ && "attach agents before Boot()");
  const AgentId id{self_, local_id};
  auto [it, inserted] = agents_.try_emplace(local_id, std::move(agent));
  (void)it;
  assert(inserted && "duplicate agent local id");
  return id;
}

Status AgentServer::Boot() {
  {
    std::unique_lock lock(mutex_);
    if (booted_) return Status::FailedPrecondition("already booted");

    // Build one DomainItem per domain membership (fresh cores of the
    // configured kind); the recovery below overwrites them from the
    // durable image if any.
    for (std::size_t index : deployment_->DomainIndicesOf(self_)) {
      const domains::ResolvedDomain& domain = deployment_->domain(index);
      auto local = domain.LocalId(self_);
      assert(local.has_value());
      DomainItem item;
      item.deployment_index = index;
      item.id = domain.id;
      item.self_local = *local;
      item.core = clocks::MakeCausalCore(
          deployment_->config().CoreFor(domain.id), *local, domain.size(),
          deployment_->config().stamp_mode);
      items_.push_back(std::move(item));
    }

    CMOM_RETURN_IF_ERROR(RecoverLocked());

    // Seed the dead-letter sequence past every record already on disk
    // (dlq/ records are append-only and survive across boots).
    for (const std::string& key : store_->Keys(flow::kDeadLetterKeyPrefix)) {
      std::uint64_t seq = 0;
      if (flow::ParseDeadLetterKey(key, seq)) {
        next_dlq_seq_ = std::max(next_dlq_seq_, seq + 1);
      }
    }

    // A store the control plane has stamped must agree with the epoch
    // we were constructed for: booting epoch-E clocks under an epoch-F
    // deployment would reinterpret matrix coordinates.  Stores from
    // before the control plane (no record) pass vacuously.
    if (auto record = store_->Get(kEpochCurrentKey)) {
      ByteReader in(*record);
      auto stored = in.ReadVarU64();
      if (!stored.ok()) return stored.status();
      if (stored.value() != options_.epoch) {
        return Status::FailedPrecondition(
            "store is at epoch " + std::to_string(stored.value()) +
            " but server boots at epoch " + std::to_string(options_.epoch));
      }
    }

    // Parallel engine eligibility (see header comment): needs a
    // threaded runtime (MakeExecutor on SimRuntime returns nullptr,
    // keeping simulated traces bit-identical) and incremental
    // persistence (a full image written mid-pipeline would record an
    // empty QueueIN while reactions are in flight on the shards).
    if (options_.engine_workers > 0) {
      if (options_.cost_model != nullptr) {
        CMOM_LOG(kWarning)
            << to_string(self_)
            << ": cost model configured; parallel engine disabled";
      } else if (!incremental()) {
        CMOM_LOG(kWarning)
            << to_string(self_)
            << ": full-image persistence; parallel engine disabled";
      } else {
        executor_ = runtime_->MakeExecutor(options_.engine_workers);
        if (executor_ != nullptr) {
          worker_stat_count_ = executor_->worker_count();
          worker_stats_ = std::make_unique<WorkerStat[]>(worker_stat_count_);
        }
      }
    }
    booted_ = true;
  }

  endpoint_->SetReceiveHandler(
      [this](ServerId from, Bytes frame) { HandleFrame(from, frame); });

  // Resume pending work: retransmit every unacknowledged entry and
  // continue draining QueueIN.  Under the parallel engine the recovered
  // entries (reactions the crash interrupted before their group commit)
  // are handed straight to their shards, in QueueIN order.
  Post([this]() -> std::size_t {
    for (const OutEntry& entry : queue_out_) {
      DataFrame frame{entry.message, entry.domain, entry.stamp,
                      options_.epoch, incarnation_,
                      CoreTagFor(entry.domain)};
      EmitFrame(entry.next_hop, frame.Serialize());
      ScheduleRetransmit(entry.message.id, 0);
      // Each resume emission is a first emission under THIS
      // incarnation's numbering: the peer observed the new incarnation
      // and restarted its accepted count, so every frame it accepts
      // here must be matched by an admission on our side.  Skipping
      // this would leave `accepted` permanently ahead of `admitted` --
      // a window that never closes, which under sustained load turns
      // a restart into an unbounded flood past the peer's watermarks.
      if (options_.flow.enabled) SenderLink(entry.next_hop).Admit();
    }
    if (parallel_engine()) {
      for (InEntry& entry : queue_in_) DispatchReaction(std::move(entry));
      queue_in_.clear();
    } else if (!queue_in_.empty()) {
      engine_step_needed_ = true;
    }
    // Forwards staged by the DRR scheduler before the crash resume
    // draining (their fwd/ records were recovered above).
    if (!forward_stage_.empty() && !forward_step_queued_) {
      forward_step_queued_ = true;
      work_queue_.push_back([this] { return ForwardStep(); });
    }
    return 0;
  });
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Work serialization
// ---------------------------------------------------------------------

void AgentServer::Post(Work work) {
  std::unique_lock lock(mutex_);
  if (shutdown_) return;
  work_queue_.push_back(std::move(work));
  PumpLocked();
}

// Runs queued work items.  Caller holds mutex_ via the member lock
// discipline: this function may temporarily release it to emit frames.
void AgentServer::PumpLocked() {
  if (work_running_) return;
  work_running_ = true;
  while (!work_queue_.empty()) {
    Work work = std::move(work_queue_.front());
    work_queue_.pop_front();
    txn_bytes_marker_ = 0;
    const std::size_t entries = work();

    if (options_.cost_model != nullptr &&
        (entries > 0 || txn_bytes_marker_ > 0)) {
      // Simulated processing time: outputs become visible after the
      // modeled cost; the server stays busy (work_running_) meanwhile.
      const std::uint64_t cost = options_.cost_model->ProcessingCost(
          entries, txn_bytes_marker_);
      runtime_->After(cost, [this, life = life_] {
        std::lock_guard hold(life->mutex);
        if (!life->alive) return;
        std::vector<std::pair<ServerId, Bytes>> frames;
        {
          std::lock_guard relock(mutex_);
          frames.swap(pending_frames_);
          if (engine_step_needed_ && !engine_step_queued_) {
            engine_step_queued_ = true;
            work_queue_.push_back([this] { return EngineStep(); });
          }
          engine_step_needed_ = false;
        }
        FlushFrames(std::move(frames));
        std::unique_lock relock(mutex_);
        work_running_ = false;
        PumpLocked();
      });
      return;  // resumed by the continuation above
    }

    // Inline mode (or zero-cost work): flush outputs now.
    std::vector<std::pair<ServerId, Bytes>> frames;
    frames.swap(pending_frames_);
    if (engine_step_needed_ && !engine_step_queued_) {
      engine_step_queued_ = true;
      work_queue_.push_back([this] { return EngineStep(); });
    }
    engine_step_needed_ = false;
    if (!frames.empty()) {
      mutex_.unlock();
      FlushFrames(std::move(frames));
      mutex_.lock();
    }
  }
  work_running_ = false;
}

// Hands staged frames to the transport.  A refusal (supervised outbox
// overflow, unreachable peer) is not an error for the protocol: the
// message stays in QueueOUT and its retransmission timer re-emits it
// with the original stamp, so delivery converges once the transport
// recovers.  Called without mutex_ held.
void AgentServer::FlushFrames(std::vector<std::pair<ServerId, Bytes>> frames) {
  for (auto& [to, bytes] : frames) {
    Status status = endpoint_->Send(to, std::move(bytes));
    if (!status.ok()) {
      {
        std::lock_guard lock(mutex_);
        ++stats_.transport_send_failures;
        if (status.code() == StatusCode::kOverloaded) {
          ++stats_.transport_overloads;
        }
      }
      CMOM_LOG(kWarning) << to_string(self_) << ": transport refused frame to "
                         << to_string(to) << " (" << status
                         << "); relying on retransmission";
    }
  }
}

// ---------------------------------------------------------------------
// Channel: receive path
// ---------------------------------------------------------------------

void AgentServer::HandleFrame(ServerId from, Bytes frame) {
  // Decode on the transport thread, before the server lock.  Frame
  // parsing (ids, stamp entries, payload copy) is the Channel's largest
  // per-frame constant factor; doing it here runs decodes from
  // different peers concurrently and keeps them off the engine's
  // serialized drain.  Per-peer FIFO is preserved because each peer's
  // frames arrive on one transport thread.
  DecodedFrame decoded;
  decoded.from = from;
  auto type = PeekFrameType(frame);
  if (!type.ok()) {
    CMOM_LOG(kWarning) << "bad frame from " << to_string(from) << ": "
                       << type.status();
    return;
  }
  decoded.type = type.value();
  if (decoded.type == FrameType::kAck) {
    auto ack = DeserializeAck(frame);
    if (!ack.ok()) {
      CMOM_LOG(kWarning) << "bad ack: " << ack.status();
      return;
    }
    decoded.ack = std::move(ack).value();
  } else {
    auto data = DataFrame::Deserialize(frame);
    if (!data.ok()) {
      CMOM_LOG(kWarning) << "bad data frame: " << data.status();
      return;
    }
    decoded.data = std::move(data).value();
  }
  // The wire buffer is dead after the decode; recycle it into this
  // transport thread's freelist, where the ack serializer draws from.
  BufferPool::Release(std::move(frame));
  std::unique_lock lock(mutex_);
  if (shutdown_ || !halt_status_.ok()) return;
  inbox_.push_back(std::move(decoded));
  if (!inbox_drain_queued_) {
    inbox_drain_queued_ = true;
    work_queue_.push_back([this] { return DrainInbox(); });
    PumpLocked();
  }
}

// One Channel transaction: processes up to channel_batch inbox frames,
// commits everything they changed in one store transaction, then sends
// one coalesced ack frame per peer.  Under load the per-message commit
// (and ack frame) count drops toward 1/batch; when frames trickle in
// one at a time this degenerates to the classical one-commit-per-frame
// protocol.
std::size_t AgentServer::DrainInbox() {
  inbox_drain_queued_ = false;
  commit_needed_ = false;
  std::size_t entries = 0;
  std::size_t processed = 0;
  const std::size_t limit = std::max<std::size_t>(1, options_.channel_batch);
  while (!inbox_.empty() && processed < limit) {
    DecodedFrame frame = std::move(inbox_.front());
    inbox_.pop_front();
    ++processed;
    if (frame.type == FrameType::kAck) {
      entries += ProcessAck(frame.from, frame.ack);
    } else {
      entries += ProcessDataFrame(frame.from, std::move(frame.data));
    }
  }
  stats_.channel_batch_hist.Record(processed);
  if (commit_needed_) {
    // A failure here fail-stops the server; the guards below make the
    // ack flush and the requeue inert, so nothing un-durable leaves.
    (void)CommitLocked();
    commit_needed_ = false;
  }
  // Acks only leave after the batch is durable (commit-then-ack).
  if (options_.ack_coalesce_ns == 0) {
    FlushStagedAcks();
  } else {
    MaybeCoalesceAcksLocked();
  }
  if (!inbox_.empty() && !inbox_drain_queued_) {
    inbox_drain_queued_ = true;
    work_queue_.push_back([this] { return DrainInbox(); });
  }
  // Acks may have drained QueueOUT below the watermarks: re-open both
  // the admission valve and the credit windows we advertise upstream
  // (QueueOUT counts toward the receiver backlog, so on a router this
  // is the moment end-to-end backpressure releases).
  MaybeReplenishCredits();
  MaybeScheduleWaitDrainLocked();
  return entries;
}

std::size_t AgentServer::ProcessDataFrame(ServerId from, DataFrame frame) {
  ++stats_.frames_received;
  if (frame.epoch != options_.epoch) {
    // A straggler from across a reconfiguration cutover: its stamp is
    // in another epoch's coordinate system.  Dropped WITHOUT an ack, so
    // the sender -- once itself moved to our epoch, or recovered back
    // to its own -- retransmits under matching coordinates.
    ++stats_.epoch_fenced_frames;
    return 0;
  }
  DomainItem* item = FindItemByDomainId(frame.domain);
  if (item == nullptr) {
    CMOM_LOG(kError) << to_string(self_) << ": frame in foreign domain "
                     << to_string(frame.domain);
    return 0;
  }
  const domains::ResolvedDomain& domain =
      deployment_->domain(item->deployment_index);
  auto src_local = domain.LocalId(from);
  if (!src_local) {
    CMOM_LOG(kError) << to_string(self_) << ": sender " << to_string(from)
                     << " not in " << to_string(frame.domain);
    return 0;
  }
  if (frame.core_tag != static_cast<std::uint8_t>(item->core->kind())) {
    // The stamp was produced by a different causal core: its entries
    // mean nothing to ours.  Dropped without an ack, like an epoch
    // straggler -- a correctly configured sender retransmits with the
    // matching core.
    ++stats_.core_fenced_frames;
    return 0;
  }

  // Restart detection (src/flow): a higher sender incarnation means the
  // peer rebooted and counts its credit admissions from zero, so our
  // accepted/advertised numbering restarts with it.  Observed for every
  // frame -- duplicates included -- so the ack echo below always names
  // the incarnation the grant was computed against.
  if (options_.flow.enabled && frame.incarnation != 0) {
    ReceiverLink(from).ObserveSession(frame.incarnation);
  }
  // A frame from a dead incarnation (reordered past the sender's
  // restart) must not count toward the CURRENT session's accepted
  // numbering: the restarted sender never admitted it, and counting it
  // would widen its window permanently.
  const bool counts_for_credit =
      options_.flow.enabled &&
      (frame.incarnation == 0 ||
       frame.incarnation == ReceiverLink(from).sender_session());

  const MessageId message_id = frame.message.id;
  std::size_t entries = 0;
  switch (item->core->CheckReceive(*src_local, frame.stamp)) {
    case clocks::CheckResult::kDeliver: {
      if (counts_for_credit) ReceiverLink(from).Accept();
      entries += frame.stamp.entries.size();
      item->core->OnDeliver(*src_local, frame.stamp);
      entries += CommitDelivery(*item, *src_local, std::move(frame));
      entries += DrainHoldback(*item);
      commit_needed_ = true;
      break;
    }
    case clocks::CheckResult::kHold: {
      // A retransmitted copy of an already-held frame must not be held
      // again: the earlier copy was acknowledged and persisted, so this
      // one is a plain duplicate.  The MessageId index makes the check
      // O(1) where scanning the hold-back queue would invite an O(H^2)
      // overload spiral on a congested router.
      if (item->held_ids.contains(message_id)) {
        ++stats_.duplicates_dropped;
        break;  // just re-acknowledge below
      }
      if (counts_for_credit) ReceiverLink(from).Accept();
      HeldFrame held{*src_local, std::move(frame)};
      PersistHeldFrame(*item, held, next_hold_seq_++);
      item->held_ids.insert(message_id);
      item->holdback.Push(std::move(held));
      stats_.holdback_peak =
          std::max<std::uint64_t>(stats_.holdback_peak, HoldbackSizeLocked());
      stats_.holdback_depth_hist.Record(item->holdback.size());
      commit_needed_ = true;
      break;
    }
    case clocks::CheckResult::kDuplicate: {
      ++stats_.duplicates_dropped;
      break;  // already durable; just re-acknowledge
    }
  }
  if (options_.flow.enabled) {
    stats_.backlog_peak =
        std::max<std::uint64_t>(stats_.backlog_peak, ReceiverBacklogLocked());
  }
  StageAck(from, message_id);
  return entries;
}

std::size_t AgentServer::DrainHoldback(DomainItem& item) {
  std::size_t entries = 0;
  item.holdback.DrainDeliverable(
      [&](const HeldFrame& held) {
        return item.core->CheckReceive(held.src_local, held.frame.stamp);
      },
      [&](HeldFrame&& held) {
        const MessageId id = held.frame.message.id;
        item.held_ids.erase(id);
        EraseHeldFrame(item, id);
        entries += held.frame.stamp.entries.size();
        item.core->OnDeliver(held.src_local, held.frame.stamp);
        entries += CommitDelivery(item, held.src_local, std::move(held.frame));
      },
      [&](HeldFrame&& dropped) {
        const MessageId id = dropped.frame.message.id;
        item.held_ids.erase(id);
        EraseHeldFrame(item, id);
      });
  return entries;
}

std::size_t AgentServer::CommitDelivery(DomainItem& item,
                                        DomainServerId src_local,
                                        DataFrame&& frame) {
  (void)src_local;
  if (frame.message.dest_server() == self_) {
    EnqueueLocalDelivery(std::move(frame.message));
    return 0;
  }
  ++stats_.messages_forwarded;
  // Router fair scheduling: park the forward in the per-source-domain
  // DRR staging queue instead of stamping it inline, so one hot
  // upstream domain cannot monopolize the outgoing links.  Reordering
  // ACROSS source domains is causally safe -- two messages staged at
  // this router concurrently are causally concurrent (a successor
  // cannot arrive before its predecessor left) -- and FIFO per source
  // queue preserves order within each domain.  Needs incremental
  // persistence: the fwd/ record rides the delivery's own transaction,
  // so a crash between delivery and forward recovers the staged
  // message instead of losing an acked frame.
  if (options_.flow.enabled && incremental()) {
    StageForward(item.id, std::move(frame.message));
    return 0;
  }
  return StampAndEnqueue(std::move(frame.message));
}

std::size_t AgentServer::ProcessAck(ServerId from, const AckFrame& ack) {
  for (const MessageId& id : ack.messages) {
    auto it = queue_out_index_.find(id);
    if (it == queue_out_index_.end()) continue;  // duplicate ack
    if (options_.flow.enabled) {
      // Resolves the entry's in-flight emission, or -- for a frame
      // retired before its first emission (e.g. an epoch straggler
      // acked by a recovered peer) -- removes it from the blocked
      // queue, where it would wedge CanAdmit at the queue head.
      auto link = sender_links_.find(it->second->next_hop);
      if (link != sender_links_.end()) link->second.Retire(id);
    }
    EraseOutEntry(*it->second);
    // The retired message's payload buffer feeds this drain thread's
    // freelist (acks, emitted frames and decoded payloads all draw
    // from it).
    BufferPool::Release(std::move(it->second->message.payload));
    queue_out_.erase(it->second);
    queue_out_index_.erase(it);
    commit_needed_ = true;
  }
  if (options_.flow.enabled && ack.has_credit) {
    bool opened = false;
    if (ack.has_session) {
      // A grant computed against a previous incarnation of THIS server
      // is numbered for a dead admission count -- adopting it after a
      // reboot would hand this link an effectively unbounded window.
      // Dropped; retransmissions (or the credit probe) solicit a fresh
      // grant once the peer has seen a frame from this incarnation.
      // The retirement loop above already resolved this ack's own ids,
      // so the link's in-flight count and the peer's accepted count are
      // aligned for the reconciliation.
      if (ack.echo == incarnation_ &&
          SenderLink(from).Reconcile(ack.session, ack.accepted, ack.credit)) {
        opened = true;
      }
    } else if (SenderLink(from).Grant(ack.credit)) {
      // Sessionless grant (pre-session peer): taken monotonically, so
      // lost or reordered acks only delay the window, never shrink it.
      opened = true;
    }
    if (opened) ReleaseBlocked(from, /*force=*/false);
  }
  return 0;
}

void AgentServer::StageAck(ServerId peer, MessageId id) {
  for (auto& [to, ids] : staged_acks_) {
    if (to == peer) {
      ids.push_back(id);
      return;
    }
  }
  staged_acks_.emplace_back(peer, std::vector<MessageId>{id});
}

void AgentServer::FlushStagedAcks() {
  for (auto& [peer, ids] : staged_acks_) {
    ++stats_.ack_frames_sent;
    stats_.acks_sent += ids.size();
    AckFrame ack(std::move(ids));
    if (options_.flow.enabled) {
      // Piggyback the current cumulative grant on every ack; the
      // receiver-side counters make this idempotent.
      flow::CreditReceiverLink& link = ReceiverLink(peer);
      ack.has_credit = true;
      ack.credit = link.ComputeGrant(ReceiverBacklogLocked(),
                                     options_.flow.high_watermark);
      ack.has_session = true;
      ack.session = incarnation_;
      ack.echo = link.sender_session();
      ack.accepted = link.accepted();
    }
    EmitFrame(peer, ack.Serialize());
  }
  staged_acks_.clear();
}

// ack_coalesce_ns > 0: staged acks from consecutive Channel batches are
// held up to one window and flushed by a timer, so a busy multiplexed
// link sees one AckFrame per peer per window instead of one per batch.
// The deliberate exception is backpressure: when the credit trailer the
// ack would carry could reopen a paused sender's window, holding it
// back would trade sender idle time for ack batching -- that flush
// happens immediately.  Acks are only durability receipts (the peer
// retransmits until one arrives), so delaying them is always safe.
void AgentServer::MaybeCoalesceAcksLocked() {
  if (staged_acks_.empty()) return;
  if (options_.flow.enabled) {
    const std::size_t backlog = ReceiverBacklogLocked();
    const std::size_t high = options_.flow.high_watermark;
    const std::uint64_t window =
        backlog >= high ? 0 : static_cast<std::uint64_t>(high - backlog);
    for (const auto& [peer, ids] : staged_acks_) {
      (void)ids;
      auto it = receiver_links_.find(peer);
      if (it == receiver_links_.end()) continue;
      const flow::CreditReceiverLink& link = it->second;
      // Mirrors ComputeGrant without advancing it: would the trailer
      // hand this (possibly window-starved) sender new credit?
      if (link.MaybePaused() &&
          link.accepted() + window > link.advertised()) {
        ++stats_.ack_flush_unblock;
        FlushStagedAcks();
        return;
      }
    }
  }
  if (ack_flush_armed_) return;
  ack_flush_armed_ = true;
  runtime_->After(options_.ack_coalesce_ns, [this, life = life_] {
    std::lock_guard hold(life->mutex);
    if (!life->alive) return;
    Post([this]() -> std::size_t {
      ack_flush_armed_ = false;
      if (!staged_acks_.empty()) {
        ++stats_.ack_flush_timer;
        FlushStagedAcks();
      }
      return 0;
    });
  });
}

// ---------------------------------------------------------------------
// Channel: send path
// ---------------------------------------------------------------------

Message AgentServer::MakeMessage(AgentId from, AgentId to, std::string subject,
                                 Bytes payload) {
  Message message;
  message.id = MessageId{self_, next_msg_seq_++};
  meta_dirty_ = true;
  message.from = from;
  message.to = to;
  message.subject = std::move(subject);
  message.payload = std::move(payload);
  return message;
}

Result<MessageId> AgentServer::SendMessage(AgentId from, AgentId to,
                                           std::string subject,
                                           Bytes payload) {
  Message message;
  {
    std::lock_guard lock(mutex_);
    if (!booted_) return Status::FailedPrecondition("server not booted");
    if (!halt_status_.ok()) return halt_status_;
    if (from.server != self_) {
      return Status::InvalidArgument("sender agent not on this server");
    }
    if (fence_active_) {
      // Rejected before id assignment or trace recording: a fenced send
      // never existed as far as exactly-once accounting is concerned.
      ++stats_.fenced_sends_rejected;
      return Status::Unavailable("sends fenced for reconfiguration");
    }
    // Engine admission (src/flow): control-class subjects are never
    // shed; data sends are parked on the bounded wait queue while the
    // engine or QueueOUT backlog is over the high threshold, and
    // rejected with kOverloaded once the wait queue is full.  Deferral
    // happens AFTER id assignment -- the send is accepted, only its
    // processing is delayed, so ids stay in call order and exactly-once
    // accounting sees one send.  A control send from an agent whose
    // earlier data sends sit on the wait queue defers BEHIND them
    // (exempt from the depth cap): stamping order carries causal order,
    // so admitting it would apply one producer's sends out of call
    // order (e.g. an unsubscribe overtaking its preceding publish).
    // Agent reaction sends never pass through here: they are part of an
    // atomic reaction and must not be shed.
    const flow::Priority priority = flow::ClassifyPriority(subject);
    bool sender_has_deferred = false;
    if (priority == flow::Priority::kControl && !wait_queue_.empty()) {
      for (const Message& waiting : wait_queue_) {
        if (waiting.from == from) {
          sender_has_deferred = true;
          break;
        }
      }
    }
    const flow::Admission decision = flow::AdmitSend(
        priority, queue_in_.size() + engine_inflight_, queue_out_.size(),
        wait_queue_.size(), !wait_queue_.empty(), sender_has_deferred,
        options_.flow);
    if (decision == flow::Admission::kReject) {
      ++stats_.sends_shed;
      return Status::Overloaded("send wait queue full");
    }
    message = MakeMessage(from, to, std::move(subject), std::move(payload));
    if (decision == flow::Admission::kDefer) {
      ++stats_.sends_deferred;
      const MessageId id = message.id;
      wait_queue_.push_back(std::move(message));
      stats_.wait_queue_peak =
          std::max<std::uint64_t>(stats_.wait_queue_peak, wait_queue_.size());
      return id;
    }
  }
  const MessageId id = message.id;
  Post([this, message = std::move(message)]() mutable -> std::size_t {
    return ApplySends({std::move(message)});
  });
  return id;
}

// Records, routes and stamps a batch of application sends (from the
// public API or an agent reaction), then commits.
std::size_t AgentServer::ApplySends(std::vector<Message> sends) {
  std::size_t entries = 0;
  // Local-origin sends may causally depend on ANY delivery this server
  // has seen -- including forwards still parked in the DRR stage (the
  // producer could have sent the staged message first, then the message
  // whose reaction triggered this send).  Stamp every staged forward
  // first so the outgoing stamp order stays causal; only pure
  // router-to-router traffic keeps the deferred fair schedule.
  if (!sends.empty()) entries += FlushForwardStageLocked();
  // Remote sends are collected and stamped in runs sharing a next hop
  // (one MatrixClock pass per run, see StampAndEnqueueBatch).  Local
  // deliveries go straight through: they never touch the clock, all of
  // this lands in the same store transaction, and frames only leave
  // after that commit -- so neither per-hop stamp order nor per-agent
  // FIFO changes relative to the strictly interleaved original.
  std::vector<Message> remote;
  remote.reserve(sends.size());
  for (Message& message : sends) {
    ++stats_.messages_sent;
    ++originated_by_dest_[message.dest_server()];
    BufferTraceSend(message);
    if (message.dest_server() == self_) {
      EnqueueLocalDelivery(std::move(message));
    } else {
      remote.push_back(std::move(message));
    }
  }
  if (!remote.empty()) entries += StampAndEnqueueBatch(std::move(remote));
  (void)CommitLocked();
  return entries;
}

std::size_t AgentServer::StampAndEnqueue(Message message) {
  const ServerId dest = message.dest_server();
  const ServerId hop = deployment_->routing().NextHop(self_, dest);
  auto link_index = deployment_->LinkDomainIndex(self_, hop);
  if (!link_index.ok()) {
    CMOM_LOG(kError) << "unroutable message " << message.id << ": "
                     << link_index.status();
    return 0;
  }
  DomainItem* item = nullptr;
  for (DomainItem& candidate : items_) {
    if (candidate.deployment_index == link_index.value()) {
      item = &candidate;
      break;
    }
  }
  assert(item != nullptr && "link domain not among this server's items");
  auto hop_local =
      deployment_->domain(link_index.value()).LocalId(hop);
  assert(hop_local.has_value());

  OutEntry entry;
  entry.message = std::move(message);
  entry.next_hop = hop;
  entry.domain = item->id;
  entry.stamp = item->core->PrepareSend(*hop_local);
  return EnqueueStampedLocked(std::move(entry));
}

std::size_t AgentServer::StampAndEnqueueBatch(std::vector<Message> messages) {
  std::size_t entries = 0;
  std::size_t i = 0;
  std::vector<clocks::Stamp> stamps;
  while (i < messages.size()) {
    const ServerId hop =
        deployment_->routing().NextHop(self_, messages[i].dest_server());
    auto link_index = deployment_->LinkDomainIndex(self_, hop);
    if (!link_index.ok()) {
      CMOM_LOG(kError) << "unroutable message " << messages[i].id << ": "
                       << link_index.status();
      ++i;
      continue;
    }
    // Extend the run across consecutive messages sharing this hop; the
    // link domain is a function of (self, hop), so one resolution
    // covers the whole run.
    std::size_t j = i + 1;
    while (j < messages.size() &&
           deployment_->routing().NextHop(
               self_, messages[j].dest_server()) == hop) {
      ++j;
    }
    DomainItem* item = nullptr;
    for (DomainItem& candidate : items_) {
      if (candidate.deployment_index == link_index.value()) {
        item = &candidate;
        break;
      }
    }
    assert(item != nullptr && "link domain not among this server's items");
    auto hop_local = deployment_->domain(link_index.value()).LocalId(hop);
    assert(hop_local.has_value());

    stamps.clear();
    item->core->PrepareSendBatch(*hop_local, j - i, stamps);
    for (std::size_t k = i; k < j; ++k) {
      OutEntry entry;
      entry.message = std::move(messages[k]);
      entry.next_hop = hop;
      entry.domain = item->id;
      entry.stamp = std::move(stamps[k - i]);
      entries += EnqueueStampedLocked(std::move(entry));
    }
    i = j;
  }
  return entries;
}

std::size_t AgentServer::EnqueueStampedLocked(OutEntry entry) {
  entry.enqueue_seq = next_out_enqueue_seq_++;
  const std::size_t entries = entry.stamp.entries.size();
  const std::size_t stamp_bytes = entry.stamp.EncodedSize();
  stats_.stamp_bytes_sent += stamp_bytes;
  stats_.stamp_bytes_hist.Record(stamp_bytes);
  const ServerId hop = entry.next_hop;

  const MessageId id = entry.message.id;
  PersistOutEntry(entry);
  queue_out_.push_back(std::move(entry));
  queue_out_index_.emplace(id, std::prev(queue_out_.end()));

  // During recovery (the full-image downgrade fold runs before Boot
  // finishes) the Boot resume pass owns emission and retransmission for
  // every QueueOUT entry: emitting or credit-gating here would
  // double-emit whatever a later grant releases and skew the admitted
  // accounting, so the entry just lands in the queue.
  if (!booted_) return entries;

  // Credit gate (src/flow): only the FIRST emission consumes a credit.
  // A blocked message is already stamped and durable in QueueOUT -- the
  // pause is indistinguishable from a slow network, so causal order and
  // exactly-once are untouched.  Blocked frames stay FIFO per link
  // (CanAdmit refuses while older frames are blocked), and an epoch
  // fence bypasses the gate entirely so quiesce cannot deadlock behind
  // a window the draining peer will never replenish.
  if (options_.flow.enabled) {
    flow::CreditSenderLink& link = SenderLink(hop);
    if (!fence_active_) {
      if (!link.CanAdmit()) {
        link.Block(id);
        ++stats_.credit_blocked;
        ScheduleCreditProbe(hop);
        return entries;
      }
    }
    // Counted even on the fence bypass: the peer's accepted count does
    // not know WHY a frame was emitted, and every uncounted emission
    // widens the credit window permanently (accepted runs ahead of
    // admitted by one, forever).
    link.Admit();
  }
  const OutEntry& stored = queue_out_.back();
  DataFrame frame{stored.message, stored.domain, stored.stamp,
                  options_.epoch, incarnation_, CoreTagFor(stored.domain)};
  EmitFrame(hop, frame.Serialize());
  ScheduleRetransmit(id, 0);
  return entries;
}

void AgentServer::EmitFrame(ServerId to, Bytes bytes) {
  if (!halt_status_.ok()) return;  // fail-stop: nothing leaves
  pending_frames_.emplace_back(to, std::move(bytes));
}

void AgentServer::ScheduleRetransmit(MessageId id,
                                     std::uint32_t attempts_so_far) {
  const std::uint32_t shift = std::min<std::uint32_t>(attempts_so_far, 6);
  const std::uint64_t delay = options_.retransmit_timeout_ns << shift;
  runtime_->After(delay, [this, id, life = life_] {
    std::lock_guard hold(life->mutex);
    if (!life->alive) return;
    Post([this, id]() -> std::size_t {
      auto it = queue_out_index_.find(id);
      if (it == queue_out_index_.end()) return 0;  // acknowledged meanwhile
      OutEntry& entry = *it->second;
      if (options_.max_retransmit_attempts != 0 &&
          entry.attempts >= options_.max_retransmit_attempts) {
        CMOM_LOG(kError) << "giving up on " << id << " after "
                         << entry.attempts << " retransmissions";
        return 0;
      }
      ++entry.attempts;
      ++stats_.retransmissions;
      DataFrame frame{entry.message, entry.domain, entry.stamp,
                      options_.epoch, incarnation_,
                      CoreTagFor(entry.domain)};
      EmitFrame(entry.next_hop, frame.Serialize());
      ScheduleRetransmit(id, entry.attempts);
      return 0;
    });
  });
}

// ---------------------------------------------------------------------
// Flow control (src/flow)
// ---------------------------------------------------------------------

flow::CreditSenderLink& AgentServer::SenderLink(ServerId peer) {
  auto it = sender_links_.find(peer);
  if (it == sender_links_.end()) {
    it = sender_links_
             .emplace(peer,
                      flow::CreditSenderLink(options_.flow.initial_credit))
             .first;
  }
  return it->second;
}

flow::CreditReceiverLink& AgentServer::ReceiverLink(ServerId peer) {
  auto it = receiver_links_.find(peer);
  if (it == receiver_links_.end()) {
    it = receiver_links_
             .emplace(peer,
                      flow::CreditReceiverLink(options_.flow.initial_credit))
             .first;
  }
  return it->second;
}

std::size_t AgentServer::ReleaseBlocked(ServerId peer, bool force) {
  auto it = sender_links_.find(peer);
  if (it == sender_links_.end()) return 0;
  flow::CreditSenderLink& link = it->second;
  std::size_t released = 0;
  MessageId id;
  while (force ? link.ForceRelease(id) : link.NextReleasable(id)) {
    auto qit = queue_out_index_.find(id);
    if (qit == queue_out_index_.end()) continue;  // retired before emission
    link.Admit();
    OutEntry& entry = *qit->second;
    DataFrame frame{entry.message, entry.domain, entry.stamp, options_.epoch,
                    incarnation_, CoreTagFor(entry.domain)};
    EmitFrame(entry.next_hop, frame.Serialize());
    ScheduleRetransmit(id, entry.attempts);
    ++released;
  }
  return released;
}

// Liveness under ack loss: a link whose frames were ALL blocked before
// first emission has no retransmission in flight toward the peer, so a
// lost replenish ack could pause it forever.  The probe force-emits the
// head blocked frame after a retransmit timeout; the peer's ack for it
// (even a duplicate-drop ack) carries a fresh cumulative grant.
void AgentServer::ScheduleCreditProbe(ServerId peer) {
  if (!credit_probe_armed_.insert(peer).second) return;
  runtime_->After(options_.retransmit_timeout_ns, [this, peer, life = life_] {
    std::lock_guard hold(life->mutex);
    if (!life->alive) return;
    Post([this, peer]() -> std::size_t {
      credit_probe_armed_.erase(peer);
      auto it = sender_links_.find(peer);
      if (it == sender_links_.end() || !it->second.paused()) return 0;
      ++stats_.credit_probes;
      MessageId id;
      while (it->second.ForceRelease(id)) {
        auto qit = queue_out_index_.find(id);
        if (qit == queue_out_index_.end()) continue;
        it->second.Admit();
        OutEntry& entry = *qit->second;
        DataFrame frame{entry.message, entry.domain, entry.stamp,
                        options_.epoch, incarnation_,
                        CoreTagFor(entry.domain)};
        EmitFrame(entry.next_hop, frame.Serialize());
        ScheduleRetransmit(id, entry.attempts);
        break;  // one frame per probe: solicit, don't flood
      }
      if (it->second.paused()) ScheduleCreditProbe(peer);
      return 0;
    });
  });
}

std::size_t AgentServer::ReceiverBacklogLocked() const {
  // Everything this server still owes work for: undelivered input,
  // dispatched reactions, causally held frames, staged forwards -- and
  // QueueOUT, so a router whose DOWNSTREAM link is credit-blocked stops
  // granting credit upstream instead of absorbing the overload into its
  // own outgoing queue (end-to-end backpressure, not hop-local).
  return queue_in_.size() + engine_inflight_ + HoldbackSizeLocked() +
         forward_stage_.size() + queue_out_.size();
}

void AgentServer::MaybeReplenishCredits() {
  if (!options_.flow.enabled) return;
  const std::size_t backlog = ReceiverBacklogLocked();
  if (backlog >= options_.flow.low_watermark) return;
  for (auto& [peer, link] : receiver_links_) {
    if (!link.MaybePaused()) continue;
    const std::uint64_t before = link.advertised();
    const std::uint64_t grant =
        link.ComputeGrant(backlog, options_.flow.high_watermark);
    if (grant == before) continue;  // nothing new to advertise
    ++stats_.credit_only_acks;
    AckFrame ack;
    ack.has_credit = true;
    ack.credit = grant;
    ack.has_session = true;
    ack.session = incarnation_;
    ack.echo = link.sender_session();
    ++stats_.ack_frames_sent;
    EmitFrame(peer, ack.Serialize());
  }
}

void AgentServer::StageForward(DomainId source, Message message) {
  ForwardEntry entry{next_fwd_seq_++, std::move(message)};
  ByteWriter out;
  out.WriteU16(source.value());
  entry.message.Encode(out);
  StorePut(FwdKey(entry.seq), std::move(out).Take());
  forward_stage_.Push(source, std::move(entry));
  stats_.staged_forward_peak = std::max<std::uint64_t>(
      stats_.staged_forward_peak, forward_stage_.size());
  if (!forward_step_queued_) {
    forward_step_queued_ = true;
    work_queue_.push_back([this] { return ForwardStep(); });
  }
}

// One forwarding transaction: pops up to channel_batch staged messages
// via deficit round robin, stamps each toward its next hop, deletes its
// fwd/ record, and commits the batch.
std::size_t AgentServer::ForwardStep() {
  forward_step_queued_ = false;
  if (forward_stage_.empty()) return 0;
  std::size_t entries = 0;
  const std::size_t budget = std::max<std::size_t>(1, options_.channel_batch);
  forward_stage_.Drain(
      budget,
      [&](DomainId source, ForwardEntry&& staged) {
        (void)source;
        StoreDelete(FwdKey(staged.seq));
        entries += StampAndEnqueue(std::move(staged.message));
        ++stats_.drr_forwarded;
      },
      &stats_.drr_rounds);
  (void)CommitLocked();
  if (!forward_stage_.empty() && !forward_step_queued_) {
    forward_step_queued_ = true;
    work_queue_.push_back([this] { return ForwardStep(); });
  }
  MaybeReplenishCredits();
  MaybeScheduleWaitDrainLocked();
  return entries;
}

std::size_t AgentServer::FlushForwardStageLocked() {
  if (forward_stage_.empty()) return 0;
  std::size_t entries = 0;
  forward_stage_.Drain(
      forward_stage_.size(),
      [&](DomainId source, ForwardEntry&& staged) {
        (void)source;
        StoreDelete(FwdKey(staged.seq));
        entries += StampAndEnqueue(std::move(staged.message));
        ++stats_.drr_forwarded;
      },
      &stats_.drr_rounds);
  return entries;
}

void AgentServer::MaybeScheduleWaitDrainLocked() {
  if (wait_queue_.empty() || wait_drain_queued_) return;
  // A fence flushes the wait queue unconditionally: the deferred sends
  // were accepted before the fence and must drain for quiesce.
  if (!fence_active_ &&
      !flow::ShouldDrainWaitQueue(queue_in_.size() + engine_inflight_,
                                  queue_out_.size(), options_.flow)) {
    return;
  }
  wait_drain_queued_ = true;
  work_queue_.push_back([this] { return DrainWaitQueue(); });
}

// Releases deferred sends in FIFO order, one engine_batch per work item
// (re-checking the threshold between batches so a refilling backlog
// pauses the drain again).
std::size_t AgentServer::DrainWaitQueue() {
  wait_drain_queued_ = false;
  if (wait_queue_.empty()) return 0;
  if (!fence_active_ &&
      !flow::ShouldDrainWaitQueue(queue_in_.size() + engine_inflight_,
                                  queue_out_.size(), options_.flow)) {
    return 0;
  }
  std::vector<Message> sends;
  const std::size_t batch = std::max<std::size_t>(1, options_.engine_batch);
  while (!wait_queue_.empty() && sends.size() < batch) {
    sends.push_back(std::move(wait_queue_.front()));
    wait_queue_.pop_front();
  }
  const std::size_t entries = ApplySends(std::move(sends));
  MaybeScheduleWaitDrainLocked();
  return entries;
}

void AgentServer::RecordDeadLetter(std::string reason,
                                   const Message& original) {
  flow::DeadLetterRecord record;
  record.reason = std::move(reason);
  record.id = original.id;
  record.from = original.from;
  record.to = original.to;
  record.subject = original.subject;
  record.payload = original.payload;
  StorePut(flow::DeadLetterKey(next_dlq_seq_++), record.Serialize());
  ++stats_.dead_letters;
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

// One Engine transaction: reacts to up to engine_batch QueueIN
// messages, persists each touched agent image once, and commits the
// whole batch -- QueueIN deletions, agent state and all the stamped
// sends the reactions produced -- atomically.
std::size_t AgentServer::EngineStep() {
  engine_step_queued_ = false;
  if (queue_in_.empty()) return 0;
  const std::size_t limit = std::max<std::size_t>(1, options_.engine_batch);

  std::vector<Message> sends;
  std::vector<std::uint32_t> reacted;  // agents to persist, insert order
  std::size_t batch = 0;
  while (!queue_in_.empty() && batch < limit) {
    InEntry entry = std::move(queue_in_.front());
    queue_in_.pop_front();
    EraseInEntry(entry);
    ++batch;

    auto agent_it = agents_.find(entry.message.to.local);
    if (agent_it == agents_.end()) {
      CMOM_LOG(kWarning) << to_string(self_) << ": no agent "
                         << entry.message.to << " for message "
                         << entry.message.id << "; dropped";
      BufferPool::Release(std::move(entry.message.payload));
      continue;
    }
    ReactionContextImpl ctx(
        this, runtime_, entry.message.to, &sends,
        [this](AgentId from, AgentId to, std::string subject, Bytes payload) {
          return MakeMessage(from, to, std::move(subject),
                             std::move(payload));
        },
        [this](std::string reason, const Message& original) {
          RecordDeadLetter(std::move(reason), original);
        });
    agent_it->second->React(ctx, entry.message);
    // The consumed payload funds the batch's own stamp/frame encodes.
    BufferPool::Release(std::move(entry.message.payload));
    if (std::find(reacted.begin(), reacted.end(), entry.message.to.local) ==
        reacted.end()) {
      reacted.push_back(entry.message.to.local);
    }
  }
  // An agent that reacted several times in this batch is persisted
  // once, with its final state -- the batch is one transaction.
  for (std::uint32_t local_id : reacted) PersistAgent(local_id);
  stats_.engine_batch_hist.Record(batch);

  // ApplySends commits the whole batch: QueueIN deletions, new
  // QueueOUT state, clocks and the agent images staged above.
  const std::size_t entries = ApplySends(std::move(sends));
  if (!queue_in_.empty()) engine_step_needed_ = true;
  // Reactions drained backlog: maybe re-open the intake valves.
  MaybeReplenishCredits();
  MaybeScheduleWaitDrainLocked();
  return entries;
}

// ---------------------------------------------------------------------
// Parallel engine (engine_workers > 0)
// ---------------------------------------------------------------------

// Routes a locally addressed message into the engine.  Caller holds
// mutex_ inside a work item; the qin/ entry is staged here and made
// durable by that work item's own commit, which the FIFO work queue
// runs strictly before any commit-stage item a worker can enqueue --
// so the qin/ put always commits before the group commit erases it.
void AgentServer::EnqueueLocalDelivery(Message message) {
  BufferTraceDeliver(message);
  ++stats_.messages_delivered;
  InEntry entry{next_in_seq_++, std::move(message)};
  PersistInEntry(entry);
  if (parallel_engine()) {
    DispatchReaction(std::move(entry));
    return;
  }
  queue_in_.push_back(std::move(entry));
  engine_step_needed_ = true;
}

std::size_t AgentServer::ShardOf(std::uint32_t agent_local) const {
  return std::hash<std::uint32_t>{}(agent_local) % executor_->worker_count();
}

// Caller holds mutex_.  Messages for one agent are dispatched in
// delivery order from under the server lock, and a lane runs its tasks
// serially -- so per-agent reaction order equals causal delivery order
// even though distinct agents react concurrently.
void AgentServer::DispatchReaction(InEntry entry) {
  const std::size_t shard = ShardOf(entry.message.to.local);
  stats_.shard_depth_hist.Record(executor_->PendingCount(shard));
  ++engine_inflight_;
  executor_->Post(shard, [this, shard, entry = std::move(entry)]() mutable {
    RunReaction(shard, std::move(entry));
  });
}

// Shard worker body.  Touches no server state guarded by mutex_:
// agents_ is structurally frozen after Boot and this shard is the only
// thread running (or encoding) its agents, so React and EncodeState
// need no lock.  MessageId assignment is deferred to the commit stage
// to keep id order a single-writer sequence.
void AgentServer::RunReaction(std::size_t shard, InEntry entry) {
  struct Collector final : ReactionContext {
    net::Runtime* runtime;
    AgentId id;
    std::vector<PendingSend>* out;
    std::vector<flow::DeadLetterRecord>* dead;
    [[nodiscard]] AgentId self() const override { return id; }
    void Send(AgentId to, std::string subject, Bytes payload) override {
      out->push_back(
          PendingSend{id, to, std::move(subject), std::move(payload)});
    }
    [[nodiscard]] std::uint64_t NowNs() const override {
      return runtime->NowNs();
    }
    // Buffered like the sends: the record is speculative until the
    // group commit persists it (dlq/ sequence assignment happens there,
    // under mutex_).
    void DeadLetter(std::string reason, const Message& original) override {
      flow::DeadLetterRecord record;
      record.reason = std::move(reason);
      record.id = original.id;
      record.from = original.from;
      record.to = original.to;
      record.subject = original.subject;
      record.payload = original.payload;
      dead->push_back(std::move(record));
    }
  };

  const std::uint64_t start = runtime_->NowNs();
  ReactionResult result;
  result.in_seq = entry.seq;
  result.agent_local = entry.message.to.local;
  auto agent_it = agents_.find(result.agent_local);
  if (agent_it == agents_.end()) {
    CMOM_LOG(kWarning) << to_string(self_) << ": no agent " << entry.message.to
                       << " for message " << entry.message.id << "; dropped";
  } else {
    Collector ctx;
    ctx.runtime = runtime_;
    ctx.id = entry.message.to;
    ctx.out = &result.sends;
    ctx.dead = &result.dead_letters;
    agent_it->second->React(ctx, entry.message);
    // The image buffer comes from this worker's freelist -- in steady
    // state the payload released below funds the next image acquire,
    // making the reaction loop allocation-free.
    ByteWriter image = PooledWriter(256);
    agent_it->second->EncodeState(image);
    result.agent_image = std::move(image).Take();
    result.has_image = true;
  }
  // The consumed message is dead after React; recycle its payload.
  BufferPool::Release(std::move(entry.message.payload));
  const std::uint64_t busy = runtime_->NowNs() - start;
  {
    std::lock_guard results(results_mutex_);
    completed_reactions_.push_back(std::move(result));
  }
  // Owned by this shard's worker, read relaxed by stats() -- no lock.
  worker_stats_[shard].reactions.fetch_add(1, std::memory_order_relaxed);
  worker_stats_[shard].busy_ns.fetch_add(busy, std::memory_order_relaxed);
  // results_mutex_ released before touching mutex_ (lock order).
  ScheduleReactionCommit();
}

// Worker side: at most one commit-stage work item is outstanding, so
// results pile up while a commit runs and the next drain takes them
// all at once -- group commit sizing follows load, like the Channel
// batch.
void AgentServer::ScheduleReactionCommit() {
  std::unique_lock lock(mutex_);
  if (shutdown_ || commit_stage_queued_) return;
  // Adaptive group sizing: when the store reports a real fdatasync cost
  // (SyncMode::kDataSync), defer the commit until enough reactions have
  // completed to amortize it.  engine_inflight_ counts dispatched but
  // uncommitted reactions; while it exceeds the completed count, more
  // completions are coming and each re-enters here -- so deferral can
  // never stall the pipeline, and the moment the last in-flight
  // reaction completes the batch commits regardless of size.
  const std::size_t target = AdaptiveCommitTargetLocked();
  if (target > 1) {
    std::size_t completed = 0;
    {
      std::lock_guard results(results_mutex_);
      completed = completed_reactions_.size();
    }
    if (completed < target && engine_inflight_ > completed) return;
  }
  commit_stage_queued_ = true;
  work_queue_.push_back([this] { return CommitReactions(); });
  PumpLocked();
}

std::size_t AgentServer::AdaptiveCommitTargetLocked() const {
  const std::uint64_t sync_ns = store_->sync_latency_ns();
  if (sync_ns == 0) return 1;  // cheap commits: size follows load alone
  const std::size_t cap = std::max<std::size_t>(1, options_.engine_batch);
  std::uint64_t reactions = 0;
  std::uint64_t busy = 0;
  for (std::size_t i = 0; i < worker_stat_count_; ++i) {
    reactions += worker_stats_[i].reactions.load(std::memory_order_relaxed);
    busy += worker_stats_[i].busy_ns.load(std::memory_order_relaxed);
  }
  const std::uint64_t mean_react = reactions == 0 ? 0 : busy / reactions;
  // Batch until the sync barrier costs at most one mean reaction per
  // batch member; before any reaction has been timed, assume the worst
  // and use the configured ceiling.
  if (mean_react == 0) return cap;
  const auto target = static_cast<std::size_t>(sync_ns / mean_react);
  return std::clamp<std::size_t>(target, std::size_t{1}, cap);
}

// Commit stage (a regular work item, so it serializes with the Channel
// and owns mutex_).  Drains every completed reaction and commits the
// group in one store transaction: qin/ erases, one image per touched
// agent (last write wins), and the stamped sends -- which ApplySends
// also routes, including re-dispatching local deliveries to shards.
// The flag is cleared BEFORE the drain: a worker that queues a result
// after our swap finds commit_stage_queued_ false once it gets mutex_
// and schedules the next commit, so no result is ever stranded.
std::size_t AgentServer::CommitReactions() {
  commit_stage_queued_ = false;
  std::vector<ReactionResult> batch;
  {
    std::lock_guard results(results_mutex_);
    batch.swap(completed_reactions_);
  }
  if (batch.empty()) return 0;

  std::vector<Message> sends;
  std::unordered_map<std::uint32_t, std::size_t> last_image;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].has_image) last_image[batch[i].agent_local] = i;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ReactionResult& result = batch[i];
    StoreDelete(InKey(result.in_seq));
    for (PendingSend& send : result.sends) {
      sends.push_back(MakeMessage(send.from, send.to, std::move(send.subject),
                                  std::move(send.payload)));
    }
    for (flow::DeadLetterRecord& record : result.dead_letters) {
      StorePut(flow::DeadLetterKey(next_dlq_seq_++), record.Serialize());
      ++stats_.dead_letters;
    }
    auto it = last_image.find(result.agent_local);
    if (it != last_image.end() && it->second == i) {
      StorePut(AgentKey(result.agent_local), std::move(result.agent_image));
    }
  }
  stats_.group_commit_hist.Record(batch.size());
  assert(engine_inflight_ >= batch.size());
  engine_inflight_ -= batch.size();
  const std::size_t entries = ApplySends(std::move(sends));
  MaybeReplenishCredits();
  MaybeScheduleWaitDrainLocked();
  return entries;
}

// ---------------------------------------------------------------------
// Persistence and recovery
// ---------------------------------------------------------------------

void AgentServer::StorePut(std::string_view key, Bytes value) {
  if (!halt_status_.ok()) return;  // fail-stop: the store is frozen
  store_->Put(key, std::move(value));
  ++txn_ops_staged_;
}

void AgentServer::StoreDelete(std::string_view key) {
  if (!halt_status_.ok()) return;  // fail-stop: the store is frozen
  store_->Delete(key);
  ++txn_ops_staged_;
}

void AgentServer::PersistMeta() {
  if (!meta_dirty_) return;
  ByteWriter out;
  out.WriteVarU64(next_msg_seq_);
  out.WriteVarU64(incarnation_);  // boot counter (flow restart detection)
  StorePut(kMetaKey, std::move(out).Take());
  meta_dirty_ = false;
}

void AgentServer::PersistClocks(bool force) {
  if (!incremental()) {
    ByteWriter out;
    out.WriteVarU64(items_.size());
    for (const DomainItem& item : items_) {
      out.WriteVarU64(item.deployment_index);
      item.core->EncodeState(out);
    }
    StorePut(kLegacyClocksKey, std::move(out).Take());
    return;
  }
  for (DomainItem& item : items_) {
    if (!force && item.persisted_clock_version == item.core->version()) {
      continue;
    }
    ByteWriter out;
    item.core->EncodeState(out);
    StorePut(ClockKey(item.deployment_index), std::move(out).Take());
    item.persisted_clock_version = item.core->version();
  }
}

void AgentServer::PersistQueueOut() {
  ByteWriter out;
  out.WriteVarU64(queue_out_.size());
  for (const OutEntry& entry : queue_out_) {
    entry.message.Encode(out);
    out.WriteU16(entry.next_hop.value());
    out.WriteU16(entry.domain.value());
    entry.stamp.Encode(out);
  }
  StorePut(kLegacyQueueOutKey, std::move(out).Take());
}

void AgentServer::PersistQueueIn() {
  ByteWriter out;
  out.WriteVarU64(queue_in_.size());
  for (const InEntry& entry : queue_in_) entry.message.Encode(out);
  StorePut(kLegacyQueueInKey, std::move(out).Take());
}

void AgentServer::PersistHoldback() {
  ByteWriter out;
  std::size_t total = 0;
  for (const DomainItem& item : items_) total += item.holdback.size();
  out.WriteVarU64(total);
  for (const DomainItem& item : items_) {
    for (const HeldFrame& held : item.holdback.pending()) {
      out.WriteVarU64(item.deployment_index);
      out.WriteU16(held.src_local.value());
      out.WriteBytes(held.frame.Serialize());
    }
  }
  StorePut(kLegacyHoldbackKey, std::move(out).Take());
}

void AgentServer::PersistAgent(std::uint32_t local_id) {
  auto it = agents_.find(local_id);
  if (it == agents_.end()) return;
  ByteWriter out;
  it->second->EncodeState(out);
  StorePut(AgentKey(local_id), std::move(out).Take());
}

void AgentServer::PersistOutEntry(const OutEntry& entry) {
  if (!incremental()) return;
  ByteWriter out;
  out.WriteVarU64(entry.enqueue_seq);
  entry.message.Encode(out);
  out.WriteU16(entry.next_hop.value());
  out.WriteU16(entry.domain.value());
  entry.stamp.Encode(out);
  StorePut(OutKey(entry.message.id), std::move(out).Take());
}

void AgentServer::EraseOutEntry(const OutEntry& entry) {
  if (!incremental()) return;
  StoreDelete(OutKey(entry.message.id));
}

void AgentServer::PersistInEntry(const InEntry& entry) {
  if (!incremental()) return;
  ByteWriter out;
  entry.message.Encode(out);
  StorePut(InKey(entry.seq), std::move(out).Take());
}

void AgentServer::EraseInEntry(const InEntry& entry) {
  if (!incremental()) return;
  StoreDelete(InKey(entry.seq));
}

void AgentServer::PersistHeldFrame(const DomainItem& item,
                                   const HeldFrame& held,
                                   std::uint64_t arrival_seq) {
  if (!incremental()) return;
  ByteWriter out;
  out.WriteVarU64(arrival_seq);
  out.WriteU16(held.src_local.value());
  out.WriteBytes(held.frame.Serialize());
  StorePut(HoldKey(item.deployment_index, held.frame.message.id),
           std::move(out).Take());
}

void AgentServer::EraseHeldFrame(const DomainItem& item, MessageId id) {
  if (!incremental()) return;
  StoreDelete(HoldKey(item.deployment_index, id));
}

// One transaction: in full-image mode, the persistent image of the
// whole channel + engine state (the matrix clocks dominating its size,
// as in the paper); in incremental mode, only the delta -- dirty domain
// clocks, the bumped meta counter, and whatever per-entry queue keys
// the transaction staged on its way here.
Status AgentServer::CommitLocked() {
  if (!halt_status_.ok()) return halt_status_;
  if (incremental()) {
    PersistMeta();
    PersistClocks(/*force=*/false);
  } else {
    meta_dirty_ = true;  // full image rewrites everything, every commit
    PersistMeta();
    PersistClocks(/*force=*/true);
    PersistQueueOut();
    PersistQueueIn();
    PersistHoldback();
  }
  if (txn_ops_staged_ == 0) {  // nothing changed durable state
    FlushTraceLocked();
    return Status::Ok();
  }
  Status status = store_->Commit();
  if (!status.ok()) {
    // The historical path logged and continued, leaving in-memory state
    // the store never saw -- a restart would then silently rewind the
    // clocks and queues, voiding exactly-once.  Fail-stop instead.
    FailStopLocked(status);
    return halt_status_;
  }
  txn_ops_staged_ = 0;
  txn_bytes_marker_ += store_->last_commit_bytes();
  ++stats_.commits;
  stats_.commit_bytes += store_->last_commit_bytes();
  stats_.commit_bytes_hist.Record(store_->last_commit_bytes());
  FlushTraceLocked();
  return Status::Ok();
}

void AgentServer::FailStopLocked(const Status& cause) {
  if (!halt_status_.ok()) return;  // already halted
  halt_status_ = Status::FailStop(to_string(self_) + " halted on store error: " +
                                  cause.to_string());
  CMOM_LOG(kError) << to_string(self_) << ": FAIL-STOP: " << cause
                   << "; durable state frozen at last successful commit";
  // The failed transaction never became durable.  Roll its staged ops
  // out of the store (so a restart over the same store object sees
  // exactly the committed image) and discard every output that would
  // advertise the un-durable state: a data frame would let the peer
  // deliver a message a restart un-sends, and an ack would let the
  // sender retire a message this server will no longer remember.
  store_->Rollback();
  txn_ops_staged_ = 0;
  pending_trace_.clear();
  pending_frames_.clear();
  staged_acks_.clear();
  inbox_.clear();
  engine_step_needed_ = false;
  // work_queue_ is intentionally NOT cleared: queued items run inertly
  // through the halt guards, so an ApplyControlRecord waiting on its
  // promise resolves (with the halt status) instead of deadlocking.
}

Status AgentServer::health() const {
  std::lock_guard lock(mutex_);
  return halt_status_;
}

void AgentServer::BufferTraceSend(const Message& message) {
  if (options_.trace == nullptr || !halt_status_.ok()) return;
  pending_trace_.push_back(causality::TraceEvent{
      causality::EventKind::kSend, message.id, self_, message.dest_server(),
      message.from, message.to});
}

void AgentServer::BufferTraceDeliver(const Message& message) {
  if (options_.trace == nullptr || !halt_status_.ok()) return;
  pending_trace_.push_back(causality::TraceEvent{
      causality::EventKind::kDeliver, message.id, self_, self_, message.from,
      message.to});
}

void AgentServer::FlushTraceLocked() {
  if (pending_trace_.empty()) return;
  for (const causality::TraceEvent& event : pending_trace_) {
    if (event.kind == causality::EventKind::kSend) {
      options_.trace->RecordSend(event.message, event.process,
                                 event.destination, event.src_agent,
                                 event.dst_agent);
    } else {
      options_.trace->RecordDeliver(event.message, event.process,
                                    event.destination, event.src_agent,
                                    event.dst_agent);
    }
  }
  pending_trace_.clear();
}

Status AgentServer::RecoverLocked() {
  auto meta = store_->Get(kMetaKey);
  if (!meta.has_value()) {
    // Fresh server: write the initial durable image.
    incarnation_ = 1;
    meta_dirty_ = true;
    if (incremental()) PersistClocks(/*force=*/true);
    return CommitLocked();
  }
  {
    ByteReader in(*meta);
    auto seq = in.ReadVarU64();
    if (!seq.ok()) return seq.status();
    next_msg_seq_ = seq.value();
    // Boot counter; absent in pre-flow meta records.  Bumping it -- and
    // committing the bump below, before any frame leaves -- is what
    // lets peers distinguish this incarnation's credit numbering from
    // the previous life's (src/flow/credits.h).
    std::uint64_t boots = 0;
    if (!in.exhausted()) {
      auto stored = in.ReadVarU64();
      if (!stored.ok()) return stored.status();
      boots = stored.value();
    }
    incarnation_ = boots + 1;
    meta_dirty_ = true;
  }

  const bool legacy_present = store_->Get(kLegacyClocksKey).has_value() ||
                              store_->Get(kLegacyQueueOutKey).has_value() ||
                              store_->Get(kLegacyQueueInKey).has_value() ||
                              store_->Get(kLegacyHoldbackKey).has_value();
  if (legacy_present) {
    CMOM_RETURN_IF_ERROR(RecoverLegacyLocked());
    if (incremental()) CMOM_RETURN_IF_ERROR(MigrateToIncrementalLocked());
  } else {
    CMOM_RETURN_IF_ERROR(RecoverIncrementalLocked());
    if (!incremental()) {
      // Downgrade (tests / baseline measurements): fold the per-entry
      // keys back into the monolithic blobs.  Staged forwards cannot be
      // represented in the full image, so they are stamped into
      // QueueOUT right here (the emission below is covered by the Boot
      // resume pass over queue_out_).
      forward_stage_.Drain(
          forward_stage_.size(),
          [&](DomainId, ForwardEntry&& staged) {
            StampAndEnqueue(std::move(staged.message));
          });
      for (std::string_view prefix :
           {kClockKeyPrefix, kQueueOutKeyPrefix, kQueueInKeyPrefix,
            kHoldKeyPrefix, kFwdKeyPrefix}) {
        for (const std::string& key : store_->Keys(prefix)) StoreDelete(key);
      }
      CMOM_RETURN_IF_ERROR(CommitLocked());
    }
  }

  for (auto& [local_id, agent] : agents_) {
    if (auto blob = store_->Get(AgentKey(local_id))) {
      ByteReader in(*blob);
      CMOM_RETURN_IF_ERROR(agent->DecodeState(in));
    }
  }
  // Make the incarnation bump durable before Boot emits any frame (the
  // downgrade path above may have committed it already).
  if (meta_dirty_) return CommitLocked();
  return Status::Ok();
}

Status AgentServer::RecoverLegacyLocked() {
  if (auto blob = store_->Get(kLegacyClocksKey)) {
    ByteReader in(*blob);
    auto count = in.ReadVarU64();
    if (!count.ok()) return count.status();
    for (std::uint64_t i = 0; i < count.value(); ++i) {
      auto index = in.ReadVarU64();
      if (!index.ok()) return index.status();
      auto core = clocks::DecodeCausalCoreState(in);
      if (!core.ok()) return core.status();
      bool found = false;
      for (DomainItem& item : items_) {
        if (item.deployment_index == index.value()) {
          if (core.value()->kind() != item.core->kind()) {
            return Status::FailedPrecondition(
                "store holds a " +
                std::string(clocks::CausalCoreKindName(core.value()->kind())) +
                " core for " + to_string(item.id) + " but the config runs " +
                std::string(clocks::CausalCoreKindName(item.core->kind())));
          }
          item.core = std::move(core).value();
          item.persisted_clock_version = item.core->version();
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::DataLoss("recovered clock for unknown domain index");
      }
    }
  }
  if (auto blob = store_->Get(kLegacyQueueOutKey)) {
    ByteReader in(*blob);
    auto count = in.ReadVarU64();
    if (!count.ok()) return count.status();
    for (std::uint64_t i = 0; i < count.value(); ++i) {
      OutEntry entry;
      auto message = Message::Decode(in);
      if (!message.ok()) return message.status();
      entry.message = std::move(message).value();
      auto hop = in.ReadU16();
      if (!hop.ok()) return hop.status();
      entry.next_hop = ServerId(hop.value());
      auto domain = in.ReadU16();
      if (!domain.ok()) return domain.status();
      entry.domain = DomainId(domain.value());
      auto stamp = clocks::Stamp::Decode(in);
      if (!stamp.ok()) return stamp.status();
      entry.stamp = std::move(stamp).value();
      entry.enqueue_seq = next_out_enqueue_seq_++;
      const MessageId id = entry.message.id;
      queue_out_.push_back(std::move(entry));
      queue_out_index_.emplace(id, std::prev(queue_out_.end()));
    }
  }
  if (auto blob = store_->Get(kLegacyQueueInKey)) {
    ByteReader in(*blob);
    auto count = in.ReadVarU64();
    if (!count.ok()) return count.status();
    for (std::uint64_t i = 0; i < count.value(); ++i) {
      auto message = Message::Decode(in);
      if (!message.ok()) return message.status();
      queue_in_.push_back(InEntry{next_in_seq_++, std::move(message).value()});
    }
  }
  if (auto blob = store_->Get(kLegacyHoldbackKey)) {
    ByteReader in(*blob);
    auto count = in.ReadVarU64();
    if (!count.ok()) return count.status();
    for (std::uint64_t i = 0; i < count.value(); ++i) {
      auto index = in.ReadVarU64();
      if (!index.ok()) return index.status();
      auto src = in.ReadU16();
      if (!src.ok()) return src.status();
      auto frame_bytes = in.ReadBytes();
      if (!frame_bytes.ok()) return frame_bytes.status();
      auto frame = DataFrame::Deserialize(frame_bytes.value());
      if (!frame.ok()) return frame.status();
      bool placed = false;
      for (DomainItem& item : items_) {
        if (item.deployment_index == index.value()) {
          item.held_ids.insert(frame.value().message.id);
          item.holdback.Push(HeldFrame{DomainServerId(src.value()),
                                       std::move(frame).value()});
          placed = true;
          break;
        }
      }
      if (!placed) return Status::DataLoss("held frame for unknown domain");
    }
  }
  return Status::Ok();
}

Status AgentServer::RecoverIncrementalLocked() {
  for (const std::string& key : store_->Keys(kClockKeyPrefix)) {
    auto index = ParseHexSuffix(key, kClockKeyPrefix);
    if (!index.ok()) return index.status();
    auto blob = store_->Get(key);
    if (!blob) continue;
    ByteReader in(*blob);
    auto core = clocks::DecodeCausalCoreState(in);
    if (!core.ok()) return core.status();
    bool found = false;
    for (DomainItem& item : items_) {
      if (item.deployment_index == index.value()) {
        // The store's core kind must agree with the configured one: a
        // hybrid image decoded as matrix coordinates (or vice versa)
        // would silently break causal recovery.  Switching a domain's
        // core requires an epoch cutover, which rewrites clk/ records.
        if (core.value()->kind() != item.core->kind()) {
          return Status::FailedPrecondition(
              "store holds a " +
              std::string(clocks::CausalCoreKindName(core.value()->kind())) +
              " core for " + to_string(item.id) + " but the config runs " +
              std::string(clocks::CausalCoreKindName(item.core->kind())));
        }
        item.core = std::move(core).value();
        item.persisted_clock_version = item.core->version();
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::DataLoss("recovered clock for unknown domain index");
    }
  }

  // QueueOUT keys sort by message id; the persisted enqueue ticket
  // restores the original FIFO order (and seeds the ticket counter).
  std::vector<OutEntry> out_entries;
  for (const std::string& key : store_->Keys(kQueueOutKeyPrefix)) {
    auto blob = store_->Get(key);
    if (!blob) continue;
    ByteReader in(*blob);
    OutEntry entry;
    auto seq = in.ReadVarU64();
    if (!seq.ok()) return seq.status();
    entry.enqueue_seq = seq.value();
    auto message = Message::Decode(in);
    if (!message.ok()) return message.status();
    entry.message = std::move(message).value();
    auto hop = in.ReadU16();
    if (!hop.ok()) return hop.status();
    entry.next_hop = ServerId(hop.value());
    auto domain = in.ReadU16();
    if (!domain.ok()) return domain.status();
    entry.domain = DomainId(domain.value());
    auto stamp = clocks::Stamp::Decode(in);
    if (!stamp.ok()) return stamp.status();
    entry.stamp = std::move(stamp).value();
    out_entries.push_back(std::move(entry));
  }
  std::sort(out_entries.begin(), out_entries.end(),
            [](const OutEntry& a, const OutEntry& b) {
              return a.enqueue_seq < b.enqueue_seq;
            });
  for (OutEntry& entry : out_entries) {
    next_out_enqueue_seq_ =
        std::max(next_out_enqueue_seq_, entry.enqueue_seq + 1);
    const MessageId id = entry.message.id;
    queue_out_.push_back(std::move(entry));
    queue_out_index_.emplace(id, std::prev(queue_out_.end()));
  }

  // QueueIN keys are zero-padded sequence numbers: sorted key order IS
  // arrival order.
  for (const std::string& key : store_->Keys(kQueueInKeyPrefix)) {
    auto seq = ParseHexSuffix(key, kQueueInKeyPrefix);
    if (!seq.ok()) return seq.status();
    auto blob = store_->Get(key);
    if (!blob) continue;
    ByteReader in(*blob);
    auto message = Message::Decode(in);
    if (!message.ok()) return message.status();
    queue_in_.push_back(InEntry{seq.value(), std::move(message).value()});
    next_in_seq_ = std::max(next_in_seq_, seq.value() + 1);
  }

  // DRR staging keys are zero-padded sequence numbers like qin/: sorted
  // key order restores staging order, FIFO per source domain.
  for (const std::string& key : store_->Keys(kFwdKeyPrefix)) {
    auto seq = ParseHexSuffix(key, kFwdKeyPrefix);
    if (!seq.ok()) return seq.status();
    auto blob = store_->Get(key);
    if (!blob) continue;
    ByteReader in(*blob);
    auto source = in.ReadU16();
    if (!source.ok()) return source.status();
    auto message = Message::Decode(in);
    if (!message.ok()) return message.status();
    forward_stage_.Push(DomainId(source.value()),
                        ForwardEntry{seq.value(), std::move(message).value()});
    next_fwd_seq_ = std::max(next_fwd_seq_, seq.value() + 1);
  }

  // Held frames carry their arrival ticket; re-push per domain in
  // arrival order so repeated drains stay deterministic.
  struct RecoveredHold {
    std::uint64_t arrival_seq;
    DomainItem* item;
    HeldFrame held;
  };
  std::vector<RecoveredHold> holds;
  for (const std::string& key : store_->Keys(kHoldKeyPrefix)) {
    const std::size_t slash = key.find('/', kHoldKeyPrefix.size());
    if (slash == std::string::npos) {
      return Status::DataLoss("malformed hold-back key");
    }
    auto index =
        ParseHexSuffix(key.substr(0, slash), kHoldKeyPrefix);
    if (!index.ok()) return index.status();
    auto blob = store_->Get(key);
    if (!blob) continue;
    ByteReader in(*blob);
    auto seq = in.ReadVarU64();
    if (!seq.ok()) return seq.status();
    auto src = in.ReadU16();
    if (!src.ok()) return src.status();
    auto frame_bytes = in.ReadBytes();
    if (!frame_bytes.ok()) return frame_bytes.status();
    auto frame = DataFrame::Deserialize(frame_bytes.value());
    if (!frame.ok()) return frame.status();
    DomainItem* owner = nullptr;
    for (DomainItem& item : items_) {
      if (item.deployment_index == index.value()) {
        owner = &item;
        break;
      }
    }
    if (owner == nullptr) {
      return Status::DataLoss("held frame for unknown domain");
    }
    holds.push_back(RecoveredHold{seq.value(), owner,
                                  HeldFrame{DomainServerId(src.value()),
                                            std::move(frame).value()}});
  }
  std::sort(holds.begin(), holds.end(),
            [](const RecoveredHold& a, const RecoveredHold& b) {
              return a.arrival_seq < b.arrival_seq;
            });
  for (RecoveredHold& hold : holds) {
    next_hold_seq_ = std::max(next_hold_seq_, hold.arrival_seq + 1);
    hold.item->held_ids.insert(hold.held.frame.message.id);
    hold.item->holdback.Push(std::move(hold.held));
  }
  return Status::Ok();
}

Status AgentServer::MigrateToIncrementalLocked() {
  CMOM_LOG(kInfo) << to_string(self_)
                  << ": migrating full-image store to incremental schema";
  StoreDelete(kLegacyClocksKey);
  StoreDelete(kLegacyQueueOutKey);
  StoreDelete(kLegacyQueueInKey);
  StoreDelete(kLegacyHoldbackKey);
  meta_dirty_ = true;
  PersistClocks(/*force=*/true);
  for (const OutEntry& entry : queue_out_) PersistOutEntry(entry);
  for (const InEntry& entry : queue_in_) PersistInEntry(entry);
  for (const DomainItem& item : items_) {
    for (const HeldFrame& held : item.holdback.pending()) {
      PersistHeldFrame(item, held, next_hold_seq_++);
    }
  }
  return CommitLocked();
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

ServerStats AgentServer::stats() const {
  std::lock_guard lock(mutex_);
  ServerStats out = stats_;
  out.worker_reactions.clear();
  out.worker_busy_ns.clear();
  // O(1) per shard: relaxed reads of worker-owned counters and the
  // executor's ring indices -- no lane lock, no results_mutex_.
  for (std::size_t shard = 0; shard < worker_stat_count_; ++shard) {
    out.worker_reactions.push_back(
        worker_stats_[shard].reactions.load(std::memory_order_relaxed));
    out.worker_busy_ns.push_back(
        worker_stats_[shard].busy_ns.load(std::memory_order_relaxed));
  }
  if (executor_ != nullptr) {
    for (std::size_t lane = 0; lane < executor_->worker_count(); ++lane) {
      const net::Executor::LaneStats lane_stats =
          executor_->GetLaneStats(lane);
      out.lane_posts += lane_stats.posts;
      out.lane_overflow_posts += lane_stats.overflow_posts;
      out.lane_parks += lane_stats.parks;
      out.lane_depth_hist.MergeFrom(lane_stats.depth);
      out.lane_stall_ns_hist.MergeFrom(lane_stats.stall_ns);
    }
  }
  return out;
}

std::size_t AgentServer::holdback_size() const {
  std::lock_guard lock(mutex_);
  return HoldbackSizeLocked();
}

std::size_t AgentServer::HoldbackSizeLocked() const {
  std::size_t total = 0;
  for (const DomainItem& item : items_) total += item.holdback.size();
  return total;
}

std::size_t AgentServer::queue_out_size() const {
  std::lock_guard lock(mutex_);
  return queue_out_.size();
}

bool AgentServer::Idle() const {
  std::lock_guard lock(mutex_);
  return work_queue_.empty() && !work_running_ && inbox_.empty() &&
         queue_in_.empty() && queue_out_.empty() && engine_inflight_ == 0 &&
         forward_stage_.empty() && wait_queue_.empty();
}

void AgentServer::BeginFence() {
  {
    std::lock_guard lock(mutex_);
    fence_active_ = true;
  }
  // Credits must never deadlock a quiesce: force-emit every blocked
  // frame (their retransmission loops take over) and flush the
  // admission wait queue, so the drain the coordinator waits for can
  // complete even against a peer that stopped granting.
  Post([this]() -> std::size_t {
    for (auto& [peer, link] : sender_links_) {
      (void)link;
      ReleaseBlocked(peer, /*force=*/true);
    }
    MaybeScheduleWaitDrainLocked();
    return 0;
  });
}

void AgentServer::LiftFence() {
  std::lock_guard lock(mutex_);
  fence_active_ = false;
}

AgentServer::FenceStatus AgentServer::fence_status() const {
  std::lock_guard lock(mutex_);
  FenceStatus status;
  status.active = fence_active_;
  status.queue_out = queue_out_.size();
  status.queue_in = queue_in_.size();
  status.holdback = HoldbackSizeLocked();
  status.inflight = engine_inflight_ + work_queue_.size() +
                    inbox_.size() + (work_running_ ? 1 : 0) +
                    forward_stage_.size() + wait_queue_.size();
  status.drained = fence_active_ && status.queue_out == 0 &&
                   status.queue_in == 0 && status.holdback == 0 &&
                   status.inflight == 0;
  return status;
}

AgentServer::FlowStatus AgentServer::flow_status() const {
  std::lock_guard lock(mutex_);
  FlowStatus status;
  for (const auto& [peer, link] : sender_links_) {
    (void)peer;
    if (link.paused()) ++status.paused_links;
    status.blocked_messages += link.blocked_count();
    status.credits_outstanding += link.outstanding();
  }
  status.staged_forwards = forward_stage_.size();
  status.wait_queue = wait_queue_.size();
  status.dead_letters = stats_.dead_letters;
  return status;
}

std::vector<std::pair<ServerId, std::uint64_t>>
AgentServer::OriginatedByDestination() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<ServerId, std::uint64_t>> out(
      originated_by_dest_.begin(), originated_by_dest_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first.value() < b.first.value();
  });
  return out;
}

Status AgentServer::ApplyControlRecord(std::string_view key,
                                       std::optional<Bytes> value) {
  auto done = std::make_shared<std::promise<Status>>();
  auto committed = done->get_future();
  {
    std::unique_lock lock(mutex_);
    if (!booted_ || shutdown_) {
      return Status::FailedPrecondition(to_string(self_) +
                                        " is not running");
    }
    if (!halt_status_.ok()) return halt_status_;
    work_queue_.push_back([this, key = std::string(key),
                           value = std::move(value), done]() mutable {
      if (value.has_value()) {
        StorePut(key, std::move(*value));
      } else {
        StoreDelete(key);
      }
      // The commit status travels back to the blocked caller: a
      // fail-stop here surfaces as kFailStop at the control plane
      // instead of a record that silently never became durable.
      done->set_value(CommitLocked());
      return std::size_t{0};
    });
    PumpLocked();
  }
  return committed.get();
}

const clocks::CausalDomainClock* AgentServer::FindDomainClock(
    std::size_t deployment_domain_index) const {
  std::lock_guard lock(mutex_);
  for (const DomainItem& item : items_) {
    if (item.deployment_index == deployment_domain_index) {
      return item.core->AsMatrix();
    }
  }
  return nullptr;
}

std::vector<std::pair<DomainId, clocks::CausalCoreKind>>
AgentServer::ActiveCores() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<DomainId, clocks::CausalCoreKind>> cores;
  cores.reserve(items_.size());
  for (const DomainItem& item : items_) {
    cores.emplace_back(item.id, item.core->kind());
  }
  return cores;
}

Bytes AgentServer::DebugImage() const {
  std::lock_guard lock(mutex_);
  ByteWriter out;
  out.WriteVarU64(next_msg_seq_);
  out.WriteVarU64(items_.size());
  for (const DomainItem& item : items_) {
    out.WriteVarU64(item.deployment_index);
    item.core->EncodeState(out);
  }
  out.WriteVarU64(queue_out_.size());
  for (const OutEntry& entry : queue_out_) {
    entry.message.Encode(out);
    out.WriteU16(entry.next_hop.value());
    out.WriteU16(entry.domain.value());
    entry.stamp.Encode(out);
  }
  out.WriteVarU64(queue_in_.size());
  for (const InEntry& entry : queue_in_) entry.message.Encode(out);
  std::size_t held = 0;
  for (const DomainItem& item : items_) held += item.holdback.size();
  out.WriteVarU64(held);
  for (const DomainItem& item : items_) {
    for (const HeldFrame& frame : item.holdback.pending()) {
      out.WriteVarU64(item.deployment_index);
      out.WriteU16(frame.src_local.value());
      out.WriteBytes(frame.frame.Serialize());
    }
  }
  return std::move(out).Take();
}

AgentServer::DomainItem* AgentServer::FindItemByDomainId(DomainId id) {
  for (DomainItem& item : items_) {
    if (item.id == id) return &item;
  }
  return nullptr;
}

std::uint8_t AgentServer::CoreTagFor(DomainId domain) const {
  for (const DomainItem& item : items_) {
    if (item.id == domain) {
      return static_cast<std::uint8_t>(item.core->kind());
    }
  }
  return 0;
}

}  // namespace cmom::mom
