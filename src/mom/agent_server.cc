#include "mom/agent_server.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/log.h"

namespace cmom::mom {

namespace {
constexpr std::string_view kMetaKey = "meta";
constexpr std::string_view kClocksKey = "channel/clocks";
constexpr std::string_view kQueueOutKey = "channel/qout";
constexpr std::string_view kQueueInKey = "engine/qin";
constexpr std::string_view kHoldbackKey = "channel/holdback";
constexpr std::string_view kAgentKeyPrefix = "agent/";

std::string AgentKey(std::uint32_t local_id) {
  return std::string(kAgentKeyPrefix) + std::to_string(local_id);
}
}  // namespace

// Buffers the sends an agent makes during React; they are committed
// atomically with the reaction by the Engine.
class ReactionContextImpl final : public ReactionContext {
 public:
  ReactionContextImpl(AgentServer* server, net::Runtime* runtime, AgentId self,
                      std::vector<Message>* sends,
                      std::function<Message(AgentId, AgentId, std::string,
                                            Bytes)>
                          make_message)
      : server_(server),
        runtime_(runtime),
        self_(self),
        sends_(sends),
        make_message_(std::move(make_message)) {
    (void)server_;
  }

  [[nodiscard]] AgentId self() const override { return self_; }

  void Send(AgentId to, std::string subject, Bytes payload) override {
    sends_->push_back(
        make_message_(self_, to, std::move(subject), std::move(payload)));
  }

  [[nodiscard]] std::uint64_t NowNs() const override {
    return runtime_->NowNs();
  }

 private:
  AgentServer* server_;
  net::Runtime* runtime_;
  AgentId self_;
  std::vector<Message>* sends_;
  std::function<Message(AgentId, AgentId, std::string, Bytes)> make_message_;
};

AgentServer::AgentServer(const domains::Deployment& deployment, ServerId self,
                         net::Endpoint* endpoint, net::Runtime* runtime,
                         Store* store, AgentServerOptions options)
    : deployment_(&deployment),
      self_(self),
      endpoint_(endpoint),
      runtime_(runtime),
      store_(store),
      options_(options) {
  assert(endpoint_->self() == self_);
}

AgentServer::~AgentServer() { Halt(); }

void AgentServer::Halt() {
  Shutdown();
  // Bar pending runtime callbacks (and wait out any mid-flight one,
  // including a retransmission currently handing frames to the
  // endpoint) before the members they reference go away.
  std::lock_guard hold(life_->mutex);
  life_->alive = false;
}

void AgentServer::Shutdown() {
  std::lock_guard lock(mutex_);
  if (shutdown_) return;
  shutdown_ = true;
  // Drop frames arriving after shutdown; the durable state in the
  // store is what the next Boot resumes from.  Timer callbacks keep
  // firing until destruction but become no-ops via the shutdown_ check
  // in Post.
  endpoint_->SetReceiveHandler([](ServerId, Bytes) {});
}

AgentId AgentServer::AttachAgent(std::uint32_t local_id,
                                 std::unique_ptr<Agent> agent) {
  std::lock_guard lock(mutex_);
  assert(!booted_ && "attach agents before Boot()");
  const AgentId id{self_, local_id};
  auto [it, inserted] = agents_.try_emplace(local_id, std::move(agent));
  (void)it;
  assert(inserted && "duplicate agent local id");
  return id;
}

Status AgentServer::Boot() {
  {
    std::unique_lock lock(mutex_);
    if (booted_) return Status::FailedPrecondition("already booted");

    // Build one DomainItem per domain membership (fresh clocks); the
    // recovery below overwrites them from the durable image if any.
    for (std::size_t index : deployment_->DomainIndicesOf(self_)) {
      const domains::ResolvedDomain& domain = deployment_->domain(index);
      auto local = domain.LocalId(self_);
      assert(local.has_value());
      DomainItem item;
      item.deployment_index = index;
      item.id = domain.id;
      item.self_local = *local;
      item.clock = clocks::CausalDomainClock(
          *local, domain.size(), deployment_->config().stamp_mode);
      items_.push_back(std::move(item));
    }

    CMOM_RETURN_IF_ERROR(RecoverLocked());
    booted_ = true;
  }

  endpoint_->SetReceiveHandler(
      [this](ServerId from, Bytes frame) { HandleFrame(from, frame); });

  // Resume pending work: retransmit every unacknowledged entry and
  // continue draining QueueIN.
  Post([this]() -> std::size_t {
    for (const OutEntry& entry : queue_out_) {
      DataFrame frame{entry.message, entry.domain, entry.stamp};
      EmitFrame(entry.next_hop, frame.Serialize());
      ScheduleRetransmit(entry.message.id, 0);
    }
    if (!queue_in_.empty()) engine_step_needed_ = true;
    return 0;
  });
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Work serialization
// ---------------------------------------------------------------------

void AgentServer::Post(Work work) {
  std::unique_lock lock(mutex_);
  if (shutdown_) return;
  work_queue_.push_back(std::move(work));
  PumpLocked();
}

// Runs queued work items.  Caller holds mutex_ via the member lock
// discipline: this function may temporarily release it to emit frames.
void AgentServer::PumpLocked() {
  if (work_running_) return;
  work_running_ = true;
  while (!work_queue_.empty()) {
    Work work = std::move(work_queue_.front());
    work_queue_.pop_front();
    txn_bytes_marker_ = 0;
    const std::size_t entries = work();

    if (options_.cost_model != nullptr &&
        (entries > 0 || txn_bytes_marker_ > 0)) {
      // Simulated processing time: outputs become visible after the
      // modeled cost; the server stays busy (work_running_) meanwhile.
      const std::uint64_t cost = options_.cost_model->ProcessingCost(
          entries, txn_bytes_marker_);
      runtime_->After(cost, [this, life = life_] {
        std::lock_guard hold(life->mutex);
        if (!life->alive) return;
        std::vector<std::pair<ServerId, Bytes>> frames;
        {
          std::lock_guard relock(mutex_);
          frames.swap(pending_frames_);
          if (engine_step_needed_ && !engine_step_queued_) {
            engine_step_queued_ = true;
            work_queue_.push_back([this] { return EngineStep(); });
          }
          engine_step_needed_ = false;
        }
        FlushFrames(std::move(frames));
        std::unique_lock relock(mutex_);
        work_running_ = false;
        PumpLocked();
      });
      return;  // resumed by the continuation above
    }

    // Inline mode (or zero-cost work): flush outputs now.
    std::vector<std::pair<ServerId, Bytes>> frames;
    frames.swap(pending_frames_);
    if (engine_step_needed_ && !engine_step_queued_) {
      engine_step_queued_ = true;
      work_queue_.push_back([this] { return EngineStep(); });
    }
    engine_step_needed_ = false;
    if (!frames.empty()) {
      mutex_.unlock();
      FlushFrames(std::move(frames));
      mutex_.lock();
    }
  }
  work_running_ = false;
}

// Hands staged frames to the transport.  A refusal (supervised outbox
// overflow, unreachable peer) is not an error for the protocol: the
// message stays in QueueOUT and its retransmission timer re-emits it
// with the original stamp, so delivery converges once the transport
// recovers.  Called without mutex_ held.
void AgentServer::FlushFrames(std::vector<std::pair<ServerId, Bytes>> frames) {
  for (auto& [to, bytes] : frames) {
    Status status = endpoint_->Send(to, std::move(bytes));
    if (!status.ok()) {
      {
        std::lock_guard lock(mutex_);
        ++stats_.transport_send_failures;
      }
      CMOM_LOG(kWarning) << to_string(self_) << ": transport refused frame to "
                         << to_string(to) << " (" << status
                         << "); relying on retransmission";
    }
  }
}

// ---------------------------------------------------------------------
// Channel: receive path
// ---------------------------------------------------------------------

void AgentServer::HandleFrame(ServerId from, Bytes frame) {
  Post([this, from, frame = std::move(frame)]() -> std::size_t {
    auto type = PeekFrameType(frame);
    if (!type.ok()) {
      CMOM_LOG(kWarning) << "bad frame from " << to_string(from) << ": "
                         << type.status();
      return 0;
    }
    if (type.value() == FrameType::kAck) {
      auto ack = DeserializeAck(frame);
      if (!ack.ok()) {
        CMOM_LOG(kWarning) << "bad ack: " << ack.status();
        return 0;
      }
      return ProcessAck(ack.value());
    }
    auto data = DataFrame::Deserialize(frame);
    if (!data.ok()) {
      CMOM_LOG(kWarning) << "bad data frame: " << data.status();
      return 0;
    }
    return ProcessDataFrame(from, std::move(data).value());
  });
}

std::size_t AgentServer::ProcessDataFrame(ServerId from, DataFrame frame) {
  ++stats_.frames_received;
  DomainItem* item = FindItemByDomainId(frame.domain);
  if (item == nullptr) {
    CMOM_LOG(kError) << to_string(self_) << ": frame in foreign domain "
                     << to_string(frame.domain);
    return 0;
  }
  const domains::ResolvedDomain& domain =
      deployment_->domain(item->deployment_index);
  auto src_local = domain.LocalId(from);
  if (!src_local) {
    CMOM_LOG(kError) << to_string(self_) << ": sender " << to_string(from)
                     << " not in " << to_string(frame.domain);
    return 0;
  }

  const MessageId message_id = frame.message.id;
  std::size_t entries = 0;
  switch (item->clock.Check(*src_local, frame.stamp)) {
    case clocks::CheckResult::kDeliver: {
      entries += frame.stamp.entries.size();
      item->clock.Commit(*src_local, frame.stamp);
      entries += CommitDelivery(*item, *src_local, std::move(frame));
      entries += DrainHoldback(*item);
      CommitLocked();
      break;
    }
    case clocks::CheckResult::kHold: {
      // A retransmitted copy of an already-held frame must not be held
      // again: the earlier copy was acknowledged and persisted, so this
      // one is a plain duplicate.  (Without this check a congested
      // router re-holds and re-persists the whole growing hold-back
      // image for every retransmission -- an O(H^2) overload spiral.)
      bool already_held = false;
      for (const HeldFrame& held : item->holdback.pending()) {
        if (held.frame.message.id == message_id) {
          already_held = true;
          break;
        }
      }
      if (already_held) {
        ++stats_.duplicates_dropped;
        break;  // just re-acknowledge below
      }
      item->holdback.Push(HeldFrame{*src_local, std::move(frame)});
      stats_.holdback_peak =
          std::max<std::uint64_t>(stats_.holdback_peak, holdback_size());
      CommitLocked();
      break;
    }
    case clocks::CheckResult::kDuplicate: {
      ++stats_.duplicates_dropped;
      break;  // already durable; just re-acknowledge
    }
  }
  EmitFrame(from, AckFrame{message_id}.Serialize());
  return entries;
}

std::size_t AgentServer::DrainHoldback(DomainItem& item) {
  std::size_t entries = 0;
  item.holdback.DrainDeliverable(
      [&](const HeldFrame& held) {
        return item.clock.Check(held.src_local, held.frame.stamp);
      },
      [&](HeldFrame&& held) {
        entries += held.frame.stamp.entries.size();
        item.clock.Commit(held.src_local, held.frame.stamp);
        entries += CommitDelivery(item, held.src_local, std::move(held.frame));
      });
  return entries;
}

std::size_t AgentServer::CommitDelivery(DomainItem& item,
                                        DomainServerId src_local,
                                        DataFrame&& frame) {
  (void)item;
  (void)src_local;
  if (frame.message.dest_server() == self_) {
    if (options_.trace != nullptr) {
      options_.trace->RecordDeliver(frame.message.id, self_, self_,
                                    frame.message.from, frame.message.to);
    }
    ++stats_.messages_delivered;
    queue_in_.push_back(std::move(frame.message));
    engine_step_needed_ = true;
    return 0;
  }
  ++stats_.messages_forwarded;
  return StampAndEnqueue(std::move(frame.message));
}

std::size_t AgentServer::ProcessAck(const AckFrame& ack) {
  auto it = std::find_if(queue_out_.begin(), queue_out_.end(),
                         [&](const OutEntry& entry) {
                           return entry.message.id == ack.message;
                         });
  if (it == queue_out_.end()) return 0;  // duplicate ack
  queue_out_.erase(it);
  CommitLocked();
  return 0;
}

// ---------------------------------------------------------------------
// Channel: send path
// ---------------------------------------------------------------------

Message AgentServer::MakeMessage(AgentId from, AgentId to, std::string subject,
                                 Bytes payload) {
  Message message;
  message.id = MessageId{self_, next_msg_seq_++};
  message.from = from;
  message.to = to;
  message.subject = std::move(subject);
  message.payload = std::move(payload);
  return message;
}

Result<MessageId> AgentServer::SendMessage(AgentId from, AgentId to,
                                           std::string subject,
                                           Bytes payload) {
  Message message;
  {
    std::lock_guard lock(mutex_);
    if (!booted_) return Status::FailedPrecondition("server not booted");
    if (from.server != self_) {
      return Status::InvalidArgument("sender agent not on this server");
    }
    message = MakeMessage(from, to, std::move(subject), std::move(payload));
  }
  const MessageId id = message.id;
  Post([this, message = std::move(message)]() mutable -> std::size_t {
    return ApplySends({std::move(message)});
  });
  return id;
}

// Records, routes and stamps a batch of application sends (from the
// public API or an agent reaction), then commits.
std::size_t AgentServer::ApplySends(std::vector<Message> sends) {
  std::size_t entries = 0;
  for (Message& message : sends) {
    ++stats_.messages_sent;
    if (options_.trace != nullptr) {
      options_.trace->RecordSend(message.id, self_, message.dest_server(),
                                 message.from, message.to);
    }
    if (message.dest_server() == self_) {
      if (options_.trace != nullptr) {
        options_.trace->RecordDeliver(message.id, self_, self_, message.from,
                                      message.to);
      }
      ++stats_.messages_delivered;
      queue_in_.push_back(std::move(message));
      engine_step_needed_ = true;
    } else {
      entries += StampAndEnqueue(std::move(message));
    }
  }
  CommitLocked();
  return entries;
}

std::size_t AgentServer::StampAndEnqueue(Message message) {
  const ServerId dest = message.dest_server();
  const ServerId hop = deployment_->routing().NextHop(self_, dest);
  auto link_index = deployment_->LinkDomainIndex(self_, hop);
  if (!link_index.ok()) {
    CMOM_LOG(kError) << "unroutable message " << message.id << ": "
                     << link_index.status();
    return 0;
  }
  DomainItem* item = nullptr;
  for (DomainItem& candidate : items_) {
    if (candidate.deployment_index == link_index.value()) {
      item = &candidate;
      break;
    }
  }
  assert(item != nullptr && "link domain not among this server's items");
  auto hop_local =
      deployment_->domain(link_index.value()).LocalId(hop);
  assert(hop_local.has_value());

  OutEntry entry;
  entry.message = std::move(message);
  entry.next_hop = hop;
  entry.domain = item->id;
  entry.stamp = item->clock.PrepareSend(*hop_local);
  const std::size_t entries = entry.stamp.entries.size();
  stats_.stamp_bytes_sent += entry.stamp.EncodedSize();

  DataFrame frame{entry.message, entry.domain, entry.stamp};
  const MessageId id = entry.message.id;
  queue_out_.push_back(std::move(entry));
  EmitFrame(hop, frame.Serialize());
  ScheduleRetransmit(id, 0);
  return entries;
}

void AgentServer::EmitFrame(ServerId to, Bytes bytes) {
  pending_frames_.emplace_back(to, std::move(bytes));
}

void AgentServer::ScheduleRetransmit(MessageId id,
                                     std::uint32_t attempts_so_far) {
  const std::uint32_t shift = std::min<std::uint32_t>(attempts_so_far, 6);
  const std::uint64_t delay = options_.retransmit_timeout_ns << shift;
  runtime_->After(delay, [this, id, life = life_] {
    std::lock_guard hold(life->mutex);
    if (!life->alive) return;
    Post([this, id]() -> std::size_t {
      auto it = std::find_if(
          queue_out_.begin(), queue_out_.end(),
          [&](const OutEntry& entry) { return entry.message.id == id; });
      if (it == queue_out_.end()) return 0;  // acknowledged meanwhile
      if (options_.max_retransmit_attempts != 0 &&
          it->attempts >= options_.max_retransmit_attempts) {
        CMOM_LOG(kError) << "giving up on " << id << " after "
                         << it->attempts << " retransmissions";
        return 0;
      }
      ++it->attempts;
      ++stats_.retransmissions;
      DataFrame frame{it->message, it->domain, it->stamp};
      EmitFrame(it->next_hop, frame.Serialize());
      ScheduleRetransmit(id, it->attempts);
      return 0;
    });
  });
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

std::size_t AgentServer::EngineStep() {
  engine_step_queued_ = false;
  if (queue_in_.empty()) return 0;
  Message message = std::move(queue_in_.front());
  queue_in_.pop_front();

  std::vector<Message> sends;
  auto agent_it = agents_.find(message.to.local);
  if (agent_it == agents_.end()) {
    CMOM_LOG(kWarning) << to_string(self_) << ": no agent " << message.to
                       << " for message " << message.id << "; dropped";
  } else {
    ReactionContextImpl ctx(
        this, runtime_, message.to, &sends,
        [this](AgentId from, AgentId to, std::string subject, Bytes payload) {
          return MakeMessage(from, to, std::move(subject),
                             std::move(payload));
        });
    agent_it->second->React(ctx, message);
    PersistAgent(message.to.local);
  }

  // ApplySends commits the whole reaction: new QueueIN/QueueOUT state,
  // clocks and the agent image staged above.
  const std::size_t entries = ApplySends(std::move(sends));
  if (!queue_in_.empty()) engine_step_needed_ = true;
  return entries;
}

// ---------------------------------------------------------------------
// Persistence and recovery
// ---------------------------------------------------------------------

void AgentServer::PersistMeta() {
  ByteWriter out;
  out.WriteVarU64(next_msg_seq_);
  store_->Put(kMetaKey, std::move(out).Take());
}

void AgentServer::PersistClocks() {
  ByteWriter out;
  out.WriteVarU64(items_.size());
  for (const DomainItem& item : items_) {
    out.WriteVarU64(item.deployment_index);
    item.clock.EncodeState(out);
  }
  store_->Put(kClocksKey, std::move(out).Take());
}

void AgentServer::PersistQueueOut() {
  ByteWriter out;
  out.WriteVarU64(queue_out_.size());
  for (const OutEntry& entry : queue_out_) {
    entry.message.Encode(out);
    out.WriteU16(entry.next_hop.value());
    out.WriteU16(entry.domain.value());
    entry.stamp.Encode(out);
  }
  store_->Put(kQueueOutKey, std::move(out).Take());
}

void AgentServer::PersistQueueIn() {
  ByteWriter out;
  out.WriteVarU64(queue_in_.size());
  for (const Message& message : queue_in_) message.Encode(out);
  store_->Put(kQueueInKey, std::move(out).Take());
}

void AgentServer::PersistHoldback() {
  ByteWriter out;
  std::size_t total = 0;
  for (const DomainItem& item : items_) total += item.holdback.size();
  out.WriteVarU64(total);
  for (const DomainItem& item : items_) {
    for (const HeldFrame& held : item.holdback.pending()) {
      out.WriteVarU64(item.deployment_index);
      out.WriteU16(held.src_local.value());
      out.WriteBytes(held.frame.Serialize());
    }
  }
  store_->Put(kHoldbackKey, std::move(out).Take());
}

void AgentServer::PersistAgent(std::uint32_t local_id) {
  auto it = agents_.find(local_id);
  if (it == agents_.end()) return;
  ByteWriter out;
  it->second->EncodeState(out);
  store_->Put(AgentKey(local_id), std::move(out).Take());
}

// One transaction: the persistent image of the whole channel + engine
// state (the matrix clocks dominating its size, as in the paper).
void AgentServer::CommitLocked() {
  PersistMeta();
  PersistClocks();
  PersistQueueOut();
  PersistQueueIn();
  PersistHoldback();
  Status status = store_->Commit();
  if (!status.ok()) {
    CMOM_LOG(kError) << to_string(self_) << ": commit failed: " << status;
    return;
  }
  txn_bytes_marker_ += store_->last_commit_bytes();
  ++stats_.commits;
}

Status AgentServer::RecoverLocked() {
  auto meta = store_->Get(kMetaKey);
  if (!meta.has_value()) {
    // Fresh server: write the initial durable image.
    CommitLocked();
    return Status::Ok();
  }
  {
    ByteReader in(*meta);
    auto seq = in.ReadVarU64();
    if (!seq.ok()) return seq.status();
    next_msg_seq_ = seq.value();
  }
  if (auto blob = store_->Get(kClocksKey)) {
    ByteReader in(*blob);
    auto count = in.ReadVarU64();
    if (!count.ok()) return count.status();
    for (std::uint64_t i = 0; i < count.value(); ++i) {
      auto index = in.ReadVarU64();
      if (!index.ok()) return index.status();
      auto clock = clocks::CausalDomainClock::DecodeState(in);
      if (!clock.ok()) return clock.status();
      bool found = false;
      for (DomainItem& item : items_) {
        if (item.deployment_index == index.value()) {
          item.clock = std::move(clock).value();
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::DataLoss("recovered clock for unknown domain index");
      }
    }
  }
  if (auto blob = store_->Get(kQueueOutKey)) {
    ByteReader in(*blob);
    auto count = in.ReadVarU64();
    if (!count.ok()) return count.status();
    for (std::uint64_t i = 0; i < count.value(); ++i) {
      OutEntry entry;
      auto message = Message::Decode(in);
      if (!message.ok()) return message.status();
      entry.message = std::move(message).value();
      auto hop = in.ReadU16();
      if (!hop.ok()) return hop.status();
      entry.next_hop = ServerId(hop.value());
      auto domain = in.ReadU16();
      if (!domain.ok()) return domain.status();
      entry.domain = DomainId(domain.value());
      auto stamp = clocks::Stamp::Decode(in);
      if (!stamp.ok()) return stamp.status();
      entry.stamp = std::move(stamp).value();
      queue_out_.push_back(std::move(entry));
    }
  }
  if (auto blob = store_->Get(kQueueInKey)) {
    ByteReader in(*blob);
    auto count = in.ReadVarU64();
    if (!count.ok()) return count.status();
    for (std::uint64_t i = 0; i < count.value(); ++i) {
      auto message = Message::Decode(in);
      if (!message.ok()) return message.status();
      queue_in_.push_back(std::move(message).value());
    }
  }
  if (auto blob = store_->Get(kHoldbackKey)) {
    ByteReader in(*blob);
    auto count = in.ReadVarU64();
    if (!count.ok()) return count.status();
    for (std::uint64_t i = 0; i < count.value(); ++i) {
      auto index = in.ReadVarU64();
      if (!index.ok()) return index.status();
      auto src = in.ReadU16();
      if (!src.ok()) return src.status();
      auto frame_bytes = in.ReadBytes();
      if (!frame_bytes.ok()) return frame_bytes.status();
      auto frame = DataFrame::Deserialize(frame_bytes.value());
      if (!frame.ok()) return frame.status();
      bool placed = false;
      for (DomainItem& item : items_) {
        if (item.deployment_index == index.value()) {
          item.holdback.Push(HeldFrame{DomainServerId(src.value()),
                                       std::move(frame).value()});
          placed = true;
          break;
        }
      }
      if (!placed) return Status::DataLoss("held frame for unknown domain");
    }
  }
  for (auto& [local_id, agent] : agents_) {
    if (auto blob = store_->Get(AgentKey(local_id))) {
      ByteReader in(*blob);
      CMOM_RETURN_IF_ERROR(agent->DecodeState(in));
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

ServerStats AgentServer::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t AgentServer::holdback_size() const {
  std::size_t total = 0;
  for (const DomainItem& item : items_) total += item.holdback.size();
  return total;
}

std::size_t AgentServer::queue_out_size() const {
  std::lock_guard lock(mutex_);
  return queue_out_.size();
}

bool AgentServer::Idle() const {
  std::lock_guard lock(mutex_);
  return work_queue_.empty() && !work_running_ && queue_in_.empty() &&
         queue_out_.empty();
}

const clocks::CausalDomainClock* AgentServer::FindDomainClock(
    std::size_t deployment_domain_index) const {
  std::lock_guard lock(mutex_);
  for (const DomainItem& item : items_) {
    if (item.deployment_index == deployment_domain_index) return &item.clock;
  }
  return nullptr;
}

AgentServer::DomainItem* AgentServer::FindItemByDomainId(DomainId id) {
  for (DomainItem& item : items_) {
    if (item.id == id) return &item;
  }
  return nullptr;
}

}  // namespace cmom::mom
