#include "mom/faulty_store.h"

#include <utility>

namespace cmom::mom {

FaultyStore::FaultyStore(Store& inner, FaultyStoreOptions options)
    : inner_(&inner), options_(options), rng_(options.seed) {}

void FaultyStore::Put(std::string_view key, Bytes value) {
  {
    std::lock_guard lock(mutex_);
    if (options_.write_failure_probability > 0 &&
        rng_.NextBool(options_.write_failure_probability)) {
      txn_poisoned_ = true;
    }
  }
  inner_->Put(key, std::move(value));
}

void FaultyStore::Delete(std::string_view key) {
  {
    std::lock_guard lock(mutex_);
    if (options_.write_failure_probability > 0 &&
        rng_.NextBool(options_.write_failure_probability)) {
      txn_poisoned_ = true;
    }
  }
  inner_->Delete(key);
}

std::optional<Bytes> FaultyStore::Get(std::string_view key) {
  return inner_->Get(key);
}

std::vector<std::string> FaultyStore::Keys(std::string_view prefix) {
  return inner_->Keys(prefix);
}

Status FaultyStore::Commit() {
  {
    std::lock_guard lock(mutex_);
    bool fail = false;
    if (txn_poisoned_) {
      txn_poisoned_ = false;
      fail = true;
    }
    if (fail_countdown_ > 0 && --fail_countdown_ == 0) fail = true;
    if (!fail && options_.commit_failure_probability > 0 &&
        rng_.NextBool(options_.commit_failure_probability)) {
      fail = true;
    }
    if (fail) {
      ++stats_.faults_injected;
      // The inner store never sees this Commit: its committed image is
      // still the previous transaction's, and the staged ops stay
      // staged for the caller's Rollback.
      return Status::Unavailable("injected commit failure (ENOSPC)");
    }
    ++stats_.commits;
  }
  return inner_->Commit();
}

void FaultyStore::Rollback() {
  {
    std::lock_guard lock(mutex_);
    txn_poisoned_ = false;
  }
  inner_->Rollback();
}

Status FaultyStore::Checkpoint() { return inner_->Checkpoint(); }

std::uint64_t FaultyStore::last_commit_bytes() const {
  return inner_->last_commit_bytes();
}

std::uint64_t FaultyStore::total_bytes_written() const {
  return inner_->total_bytes_written();
}

std::uint64_t FaultyStore::sync_latency_ns() const {
  return inner_->sync_latency_ns();
}

void FaultyStore::FailAfterCommits(std::uint64_t n) {
  std::lock_guard lock(mutex_);
  fail_countdown_ = n;
}

void FaultyStore::Disarm() {
  std::lock_guard lock(mutex_);
  fail_countdown_ = 0;
  txn_poisoned_ = false;
  options_.commit_failure_probability = 0;
  options_.write_failure_probability = 0;
}

FaultyStoreStats FaultyStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace cmom::mom
