#include "mom/store.h"

#include <algorithm>

namespace cmom::mom {

void InMemoryStore::Put(std::string_view key, Bytes value) {
  staged_.push_back(StagedOp{std::string(key), std::move(value)});
}

void InMemoryStore::Delete(std::string_view key) {
  staged_.push_back(StagedOp{std::string(key), std::nullopt});
}

std::optional<Bytes> InMemoryStore::Get(std::string_view key) {
  // Staged view: the most recent staged op for this key wins.
  for (auto it = staged_.rbegin(); it != staged_.rend(); ++it) {
    if (it->key == key) return it->value;
  }
  auto it = committed_.find(key);
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> InMemoryStore::Keys(std::string_view prefix) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : committed_) {
    (void)value;
    if (key.starts_with(prefix)) keys.push_back(key);
  }
  for (const StagedOp& op : staged_) {
    if (!op.key.starts_with(prefix)) continue;
    if (op.value.has_value()) {
      if (std::find(keys.begin(), keys.end(), op.key) == keys.end()) {
        keys.push_back(op.key);
      }
    } else {
      keys.erase(std::remove(keys.begin(), keys.end(), op.key), keys.end());
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Status InMemoryStore::Commit() {
  std::uint64_t bytes = 0;
  for (StagedOp& op : staged_) {
    bytes += op.key.size();
    if (op.value.has_value()) {
      bytes += op.value->size();
      committed_[op.key] = std::move(*op.value);
    } else {
      committed_.erase(op.key);
    }
  }
  staged_.clear();
  last_commit_bytes_ = bytes;
  total_bytes_written_ += bytes;
  ++commit_count_;
  return Status::Ok();
}

void InMemoryStore::Rollback() { staged_.clear(); }

}  // namespace cmom::mom
