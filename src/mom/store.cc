#include "mom/store.h"

#include <algorithm>

#include "common/buffer_pool.h"

namespace cmom::mom {

void InMemoryStore::Put(std::string_view key, Bytes value) {
  staged_.push_back(StagedOp{std::string(key), std::move(value)});
}

void InMemoryStore::Delete(std::string_view key) {
  staged_.push_back(StagedOp{std::string(key), std::nullopt});
}

std::optional<Bytes> InMemoryStore::Get(std::string_view key) {
  // Staged view: the most recent staged op for this key wins.
  for (auto it = staged_.rbegin(); it != staged_.rend(); ++it) {
    if (it->key == key) return it->value;
  }
  auto it = committed_.find(key);
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> InMemoryStore::Keys(std::string_view prefix) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : committed_) {
    (void)value;
    if (key.starts_with(prefix)) keys.push_back(key);
  }
  for (const StagedOp& op : staged_) {
    if (!op.key.starts_with(prefix)) continue;
    if (op.value.has_value()) {
      if (std::find(keys.begin(), keys.end(), op.key) == keys.end()) {
        keys.push_back(op.key);
      }
    } else {
      keys.erase(std::remove(keys.begin(), keys.end(), op.key), keys.end());
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Status InMemoryStore::Commit() {
  std::uint64_t bytes = 0;
  for (StagedOp& op : staged_) {
    bytes += op.key.size();
    if (op.value.has_value()) {
      bytes += op.value->size();
      // Recycle the replaced image: every reaction overwrites its
      // agent's state entry, and Get() hands out copies, so the old
      // buffer has no other owner -- without this the commit stage
      // frees one buffer per reaction while the feeder side allocates
      // one, and the pool can never close the loop.
      auto [it, inserted] = committed_.try_emplace(std::move(op.key));
      if (!inserted) BufferPool::Release(std::move(it->second));
      it->second = std::move(*op.value);
    } else {
      auto it = committed_.find(op.key);
      if (it != committed_.end()) {
        BufferPool::Release(std::move(it->second));
        committed_.erase(it);
      }
    }
  }
  staged_.clear();
  last_commit_bytes_ = bytes;
  total_bytes_written_ += bytes;
  ++commit_count_;
  return Status::Ok();
}

void InMemoryStore::Rollback() { staged_.clear(); }

}  // namespace cmom::mom
