// Shared constants and byte helpers for the gateway client protocol
// ([u32 length][u8 type][body], see gateway.h for the frame catalog).
// Used by the gateway server, the in-process client pool, and tests;
// kept header-only so the bench's forked client driver can build
// frames without linking the server side.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/buffer_pool.h"
#include "common/bytes.h"

namespace cmom::mom::gwire {

enum ClientFrame : std::uint8_t {
  kHello = 1,       // c->g  u32 agent_local
  kWelcome = 2,     // g->c  u32 agent_local
  kAuthReject = 3,  // g->c  u8 reason, then close
  kClientSend = 4,  // c->g  u16 dest_server, u32 dest_local,
                    //       u16 subject_len, subject, payload
  kDeliver = 5,     // g->c  u16 src_server, u32 src_local,
                    //       u16 subject_len, subject, payload
  kSendReject = 6,  // g->c  u8 reason
};

enum RejectReason : std::uint8_t {
  kBadAgentId = 1,
  kAlreadyBound = 2,
  kNotBound = 3,
  kBusRefused = 4,
};

constexpr std::size_t kFrameHeader = 5;  // u32 length + u8 type
constexpr std::size_t kMaxClientFrame = 4ull * 1024 * 1024;

inline void AppendU8(Bytes& out, std::uint8_t value) { out.push_back(value); }

inline void AppendU16(Bytes& out, std::uint16_t value) {
  const std::size_t at = out.size();
  out.resize(at + 2);
  std::memcpy(out.data() + at, &value, 2);
}

inline void AppendU32(Bytes& out, std::uint32_t value) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &value, 4);
}

inline std::uint16_t ReadU16(const std::uint8_t* at) {
  std::uint16_t value = 0;
  std::memcpy(&value, at, 2);
  return value;
}

inline std::uint32_t ReadU32(const std::uint8_t* at) {
  std::uint32_t value = 0;
  std::memcpy(&value, at, 4);
  return value;
}

// Starts a client frame in a pooled buffer; FinishFrame patches the
// length once the body is complete.
inline Bytes BeginFrame(std::uint8_t type, std::size_t body_hint) {
  Bytes frame = BufferPool::Acquire(kFrameHeader + body_hint);
  AppendU32(frame, 0);
  AppendU8(frame, type);
  return frame;
}

inline void FinishFrame(Bytes& frame) {
  const std::uint32_t length = static_cast<std::uint32_t>(frame.size() - 4);
  std::memcpy(frame.data(), &length, 4);
}

}  // namespace cmom::mom::gwire
