#include "mom/gateway.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <utility>

#include "common/buffer_pool.h"
#include "mom/gateway_wire.h"

namespace cmom::mom {

using namespace gwire;  // NOLINT: frame types + byte helpers

namespace {

constexpr std::size_t kMaxIovPerFlush = 64;

}  // namespace

// Stateless relay: the bus delivers to the session's agent id, the
// proxy hands the message to the gateway's session table.  Carries no
// durable state (EncodeState default), so 10k proxies cost 10k map
// entries, not 10k persisted images of anything.
class GatewayServer::ProxyAgent final : public Agent {
 public:
  ProxyAgent(GatewayServer* gateway, std::uint32_t local)
      : gateway_(gateway), local_(local) {}

  void React(ReactionContext& ctx, const Message& message) override {
    (void)ctx;
    gateway_->OnBusDelivery(local_, message);
  }

 private:
  GatewayServer* gateway_;
  std::uint32_t local_;
};

// One client connection.  The receive side (rx, parsing) is touched
// only by the owning shard thread; the transmit queue is shared with
// engine threads (bus deliveries) under out_mutex.  Lock order:
// gateway mutex_ and out_mutex are never held together.
struct GatewayServer::Session {
  std::size_t shard = 0;
  net::ScopedFd fd;
  std::uint64_t token = 0;
  Bytes rx;  // shard thread only

  std::mutex out_mutex;
  std::deque<Bytes> out;
  std::size_t out_offset = 0;  // bytes of out.front() already written
  std::size_t out_bytes = 0;
  bool flush_pending = false;
  bool closed = false;

  std::atomic<std::uint32_t> agent_local{0};  // 0 = awaiting hello
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> deliveries{0};
};

GatewayServer::GatewayServer(AgentServer& server, GatewayOptions options,
                             std::shared_ptr<net::Reactor> reactor)
    : server_(server), options_(options), reactor_(std::move(reactor)) {}

GatewayServer::~GatewayServer() { Stop(); }

void GatewayServer::AttachSessionAgents(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t local =
        options_.first_session_agent + static_cast<std::uint32_t>(i);
    server_.AttachAgent(local, std::make_unique<ProxyAgent>(this, local));
  }
  std::lock_guard lock(mutex_);
  attached_ += count;
}

Status GatewayServer::Start() {
  std::lock_guard lock(mutex_);
  if (started_) return Status::FailedPrecondition("gateway already started");
  listen_fd_ = net::ScopedFd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listen_fd_.valid()) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.listen_port);
  if (::bind(listen_fd_.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Unavailable(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_.get(), options_.listen_backlog) != 0) {
    return Status::Unavailable(std::string("listen: ") + std::strerror(errno));
  }
  net::SetNonBlocking(listen_fd_.get());
  const std::size_t shard = reactor_->PickShard();
  listen_token_ = reactor_->Register(shard, listen_fd_.get(),
                                     [this](std::uint32_t) { Accept(); });
  if (listen_token_ == 0) {
    return Status::Unavailable("reactor registration failed");
  }
  started_ = true;
  return Status::Ok();
}

void GatewayServer::Stop() {
  std::uint64_t listener = 0;
  std::vector<std::uint64_t> tokens;
  std::vector<std::shared_ptr<Session>> open;
  {
    std::lock_guard lock(mutex_);
    if (stopping_ || !started_) {
      stopping_ = true;
      return;
    }
    stopping_ = true;
    listener = std::exchange(listen_token_, 0);
    for (auto& [token, session] : sessions_) {
      tokens.push_back(token);
      open.push_back(session);
    }
  }
  if (listener != 0) reactor_->Deregister(listener);
  for (std::uint64_t token : tokens) reactor_->Deregister(token);
  {
    std::lock_guard lock(mutex_);
    listen_fd_.Close();
    for (auto& session : open) {
      std::lock_guard out_lock(session->out_mutex);
      session->closed = true;
      session->out.clear();
      session->out_bytes = 0;
    }
    for (auto& session : open) session->fd.Close();
    stats_.sessions_closed += sessions_.size();
    sessions_.clear();
    bindings_.clear();
  }
  // Drain barrier: flush tasks queued before the sessions closed still
  // reference this gateway; wait until every shard ran past them so
  // the destructor cannot race one.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t pending = 0;
  for (std::size_t shard = 0; shard < reactor_->shard_count(); ++shard) {
    std::unique_lock lock(done_mutex);
    ++pending;
    const bool posted = reactor_->Post(shard, [&] {
      std::lock_guard inner(done_mutex);
      --pending;
      done_cv.notify_one();
    });
    if (!posted) --pending;
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return pending == 0; });
}

void GatewayServer::Accept() {
  while (true) {
    const int accepted = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (accepted < 0) break;
    net::SetNonBlocking(accepted);
    if (options_.tcp_nodelay) {
      int one = 1;
      ::setsockopt(accepted, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    if (options_.so_rcvbuf > 0) {
      ::setsockopt(accepted, SOL_SOCKET, SO_RCVBUF, &options_.so_rcvbuf,
                   sizeof(options_.so_rcvbuf));
    }
    if (options_.so_sndbuf > 0) {
      ::setsockopt(accepted, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }
    auto session = std::make_shared<Session>();
    session->fd = net::ScopedFd(accepted);
    session->shard = reactor_->PickShard();
    const std::uint64_t token = reactor_->Register(
        session->shard, session->fd.get(),
        [this, session](std::uint32_t events) {
          OnSessionEvent(session, events);
        });
    if (token == 0) continue;  // fd closes with the session
    // The registration is live: the session's first events can fire --
    // and even close it -- before this thread runs another line.
    // Publish the token under out_mutex so CloseSession either sees it
    // or defers the whole teardown to the undo below.
    bool undo = false;
    {
      std::lock_guard out_lock(session->out_mutex);
      if (session->closed) {
        undo = true;
      } else {
        session->token = token;
      }
    }
    bool inserted = false;
    if (!undo) {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        undo = true;
      } else {
        ++stats_.sessions_accepted;
        sessions_.emplace(token, session);
        inserted = true;
      }
    }
    if (undo) {
      // Raced Stop() or an instant close: undo outside mutex_ --
      // Deregister blocks on the session's shard, whose callbacks take
      // mutex_.  The fd stays open until after Deregister so its
      // number cannot be reused while the registration points at it.
      reactor_->Deregister(token);
      {
        std::lock_guard out_lock(session->out_mutex);
        session->closed = true;
        session->out.clear();
        session->out_bytes = 0;
        session->token = 0;
      }
      session->fd.Close();
      continue;
    }
    // CloseSession may have torn the session down between the token
    // landing and the map insertion; it found nothing to erase then,
    // so finish the bookkeeping here (value match: exactly one side
    // counts the close).
    bool closed_meanwhile = false;
    {
      std::lock_guard out_lock(session->out_mutex);
      closed_meanwhile = session->closed;
    }
    if (closed_meanwhile && inserted) {
      std::lock_guard lock(mutex_);
      auto it = sessions_.find(token);
      if (it != sessions_.end() && it->second == session) {
        sessions_.erase(it);
        ++stats_.sessions_closed;
      }
    }
  }
}

void GatewayServer::OnSessionEvent(const std::shared_ptr<Session>& session,
                                   std::uint32_t events) {
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseSession(session);
    return;
  }
  if ((events & (EPOLLIN | EPOLLRDHUP)) != 0) {
    std::uint64_t received = 0;
    bool closed = false;
    while (true) {
      std::uint8_t chunk[16 * 1024];
      const ssize_t n =
          ::recv(session->fd.get(), chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) {
        session->rx.insert(session->rx.end(), chunk, chunk + n);
        received += static_cast<std::uint64_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      closed = true;  // FIN or error
      break;
    }
    if (received > 0) {
      {
        std::lock_guard lock(mutex_);
        stats_.bytes_in += received;
      }
      ParseSession(session);
    }
    if (closed) {
      CloseSession(session);
      return;
    }
  }
  if ((events & EPOLLOUT) != 0) FlushSession(session);
}

void GatewayServer::ParseSession(const std::shared_ptr<Session>& session) {
  Bytes& rx = session->rx;
  std::size_t offset = 0;
  bool violation = false;
  while (rx.size() - offset >= kFrameHeader) {
    const std::uint32_t length = ReadU32(rx.data() + offset);
    if (length < 1 || length > kMaxClientFrame) {
      violation = true;
      break;
    }
    if (rx.size() - offset - 4 < length) break;
    if (!HandleClientFrame(session, rx.data() + offset + 4, length)) {
      violation = true;
      break;
    }
    offset += 4 + length;
  }
  rx.erase(rx.begin(), rx.begin() + static_cast<std::ptrdiff_t>(offset));
  if (violation) {
    {
      std::lock_guard lock(mutex_);
      ++stats_.protocol_errors;
    }
    FlushSession(session);  // best effort for a queued reject
    CloseSession(session);
  }
}

bool GatewayServer::HandleClientFrame(const std::shared_ptr<Session>& session,
                                      const std::uint8_t* frame,
                                      std::size_t size) {
  const std::uint8_t type = frame[0];
  const std::uint8_t* body = frame + 1;
  const std::size_t body_size = size - 1;
  switch (type) {
    case kHello: {
      if (body_size != 4) return false;
      const std::uint32_t local = ReadU32(body);
      std::uint8_t reason = 0;
      {
        std::lock_guard lock(mutex_);
        const std::uint32_t first = options_.first_session_agent;
        if (local < first || local - first >= attached_) {
          reason = kBadAgentId;
        } else if (session->agent_local.load(std::memory_order_relaxed) != 0 ||
                   bindings_.contains(local)) {
          reason = kAlreadyBound;
        } else {
          bindings_.emplace(local, session);
          session->agent_local.store(local, std::memory_order_relaxed);
        }
        if (reason != 0) ++stats_.auth_failures;
      }
      if (reason != 0) {
        Bytes reject = BeginFrame(kAuthReject, 1);
        AppendU8(reject, reason);
        FinishFrame(reject);
        QueueToClient(session, std::move(reject));
        return false;  // ParseSession flushes, then closes
      }
      Bytes welcome = BeginFrame(kWelcome, 4);
      AppendU32(welcome, local);
      FinishFrame(welcome);
      QueueToClient(session, std::move(welcome));
      return true;
    }
    case kClientSend: {
      const std::uint32_t local =
          session->agent_local.load(std::memory_order_relaxed);
      if (local == 0) return false;
      if (body_size < 8) return false;
      const std::uint16_t dest_server = ReadU16(body);
      const std::uint32_t dest_local = ReadU32(body + 2);
      const std::uint16_t subject_len = ReadU16(body + 6);
      if (body_size < 8ull + subject_len) return false;
      std::string subject(reinterpret_cast<const char*>(body + 8),
                          subject_len);
      const std::size_t payload_size = body_size - 8 - subject_len;
      Bytes payload = BufferPool::Acquire(payload_size);
      payload.resize(payload_size);
      if (payload_size > 0) {
        std::memcpy(payload.data(), body + 8 + subject_len, payload_size);
      }
      Result<MessageId> sent = server_.SendMessage(
          AgentId{server_.self(), local},
          AgentId{ServerId(dest_server), dest_local}, std::move(subject),
          std::move(payload));
      if (sent.ok()) {
        session->sends.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard lock(mutex_);
        ++stats_.client_sends;
      } else {
        {
          std::lock_guard lock(mutex_);
          ++stats_.client_send_rejects;
        }
        Bytes reject = BeginFrame(kSendReject, 1);
        AppendU8(reject, kBusRefused);
        FinishFrame(reject);
        QueueToClient(session, std::move(reject));
      }
      return true;
    }
    default:
      return false;
  }
}

// Engine thread: relay one bus delivery onto the client's connection.
void GatewayServer::OnBusDelivery(std::uint32_t agent_local,
                                  const Message& message) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    auto it = bindings_.find(agent_local);
    if (it == bindings_.end()) {
      // No client holds this session agent right now; the bus already
      // committed the delivery, so the message is simply gone -- the
      // client tier is at-most-once past the gateway.
      ++stats_.delivery_drops;
      return;
    }
    session = it->second;
    ++stats_.client_deliveries;
  }
  const std::size_t hint =
      8 + message.subject.size() + message.payload.size();
  Bytes frame = BeginFrame(kDeliver, hint);
  AppendU16(frame, message.from.server.value());
  AppendU32(frame, message.from.local);
  AppendU16(frame, static_cast<std::uint16_t>(message.subject.size()));
  const std::size_t at = frame.size();
  frame.resize(at + message.subject.size() + message.payload.size());
  std::memcpy(frame.data() + at, message.subject.data(),
              message.subject.size());
  if (!message.payload.empty()) {
    std::memcpy(frame.data() + at + message.subject.size(),
                message.payload.data(), message.payload.size());
  }
  FinishFrame(frame);
  session->deliveries.fetch_add(1, std::memory_order_relaxed);
  QueueToClient(session, std::move(frame));
}

void GatewayServer::QueueToClient(const std::shared_ptr<Session>& session,
                                  Bytes frame) {
  bool kick = false;
  bool dropped = false;
  {
    std::lock_guard out_lock(session->out_mutex);
    if (session->closed) {
      dropped = true;
    } else if (session->out_bytes + frame.size() >
               options_.session_outbox_max_bytes) {
      dropped = true;
    } else {
      session->out_bytes += frame.size();
      session->out.push_back(std::move(frame));
      if (!session->flush_pending) {
        session->flush_pending = true;
        kick = true;
      }
    }
  }
  if (dropped) {
    BufferPool::Release(std::move(frame));
    std::lock_guard lock(mutex_);
    ++stats_.delivery_drops;
    return;
  }
  if (kick) {
    reactor_->Post(session->shard,
                   [this, session] { FlushSession(session); });
  }
}

// Shard thread: vectored flush of the session's outbound queue.
void GatewayServer::FlushSession(const std::shared_ptr<Session>& session) {
  std::uint64_t written_total = 0;
  bool close = false;
  {
    std::lock_guard out_lock(session->out_mutex);
    session->flush_pending = false;
    if (session->closed) return;
    while (!session->out.empty()) {
      std::array<iovec, kMaxIovPerFlush> iov;
      std::size_t iov_count = 0;
      for (auto it = session->out.begin();
           it != session->out.end() && iov_count < kMaxIovPerFlush; ++it) {
        const std::size_t skip =
            iov_count == 0 ? session->out_offset : 0;
        iov[iov_count].iov_base = it->data() + skip;
        iov[iov_count].iov_len = it->size() - skip;
        ++iov_count;
      }
      msghdr msg{};
      msg.msg_iov = iov.data();
      msg.msg_iovlen = iov_count;
      const ssize_t n = ::sendmsg(session->fd.get(), &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // EPOLLOUT
        close = true;
        break;
      }
      written_total += static_cast<std::uint64_t>(n);
      std::size_t written = static_cast<std::size_t>(n);
      while (written > 0 && !session->out.empty()) {
        Bytes& front = session->out.front();
        const std::size_t remaining = front.size() - session->out_offset;
        if (written < remaining) {
          session->out_offset += written;
          written = 0;
          break;
        }
        written -= remaining;
        session->out_bytes -= front.size();
        session->out_offset = 0;
        BufferPool::Release(std::move(front));
        session->out.pop_front();
      }
    }
  }
  if (written_total > 0) {
    std::lock_guard lock(mutex_);
    stats_.bytes_out += written_total;
  }
  if (close) CloseSession(session);
}

// Shard thread: tears one session down.  Idempotent (a read error and
// Stop() may race toward the same session).
void GatewayServer::CloseSession(const std::shared_ptr<Session>& session) {
  std::uint64_t token = 0;
  {
    std::lock_guard out_lock(session->out_mutex);
    if (session->closed) return;
    session->closed = true;
    session->out.clear();
    session->out_bytes = 0;
    token = session->token;
  }
  // Raced Accept(): the token has not landed yet.  Accept observes
  // `closed` under out_mutex and owns the deregistration and fd close
  // (closing the fd here would free its number for reuse while the
  // registration still points at it).
  if (token == 0) return;
  reactor_->Deregister(token);
  session->fd.Close();
  std::lock_guard lock(mutex_);
  auto it = sessions_.find(token);
  if (it != sessions_.end() && it->second == session) {
    sessions_.erase(it);
    ++stats_.sessions_closed;
  }
  const std::uint32_t local =
      session->agent_local.load(std::memory_order_relaxed);
  if (local != 0) {
    auto bit = bindings_.find(local);
    if (bit != bindings_.end() && bit->second == session) {
      bindings_.erase(bit);
    }
  }
}

GatewayStats GatewayServer::stats() const {
  std::lock_guard lock(mutex_);
  GatewayStats out = stats_;
  out.sessions_active = sessions_.size();
  return out;
}

std::vector<GatewayServer::SessionInfo> GatewayServer::sessions() const {
  std::vector<SessionInfo> out;
  std::lock_guard lock(mutex_);
  out.reserve(sessions_.size());
  for (const auto& [token, session] : sessions_) {
    (void)token;
    SessionInfo info;
    info.agent_local = session->agent_local.load(std::memory_order_relaxed);
    info.sends = session->sends.load(std::memory_order_relaxed);
    info.deliveries = session->deliveries.load(std::memory_order_relaxed);
    {
      std::lock_guard out_lock(session->out_mutex);
      info.outbox_bytes = session->out_bytes;
    }
    out.push_back(info);
  }
  return out;
}

}  // namespace cmom::mom
