// Application messages and wire frames.
//
// A Message is what agents exchange (the event of the event/reaction
// pattern): addressed agent-to-agent, identified by the sending server
// and a per-sender sequence number, carrying an opaque payload plus a
// subject string for dispatching inside the reacting agent.
//
// On the wire, each server-to-server hop wraps the message in a
// DataFrame that adds the hop's domain and the causal stamp of that
// domain's matrix clock (the piggybacking of Section 5).  The receiving
// Channel acknowledges data frames with AckFrames carrying the message
// ids, which release the sender's QueueOUT entries; acks accepted in
// one batch are coalesced into a single frame per peer.
#pragma once

#include <string>
#include <vector>

#include "clocks/stamp.h"
#include "common/bytes.h"
#include "common/ids.h"
#include "common/status.h"

namespace cmom::mom {

struct Message {
  MessageId id;
  AgentId from;
  AgentId to;
  std::string subject;
  Bytes payload;

  [[nodiscard]] ServerId dest_server() const { return to.server; }

  friend bool operator==(const Message&, const Message&) = default;

  void Encode(ByteWriter& out) const;
  [[nodiscard]] static Result<Message> Decode(ByteReader& in);
};

enum class FrameType : std::uint8_t { kData = 1, kAck = 2 };

struct DataFrame {
  Message message;
  DomainId domain;      // domain whose matrix clock stamped this hop
  clocks::Stamp stamp;  // matrix entries (full or Appendix-A delta)
  // Config epoch the sender stamped under.  A receiver at a different
  // epoch drops the frame without acking: its clocks no longer share
  // the frame's coordinate system, so the stamp is meaningless to it.
  // The sender (re-fenced to the same epoch, or crashed back to it)
  // retransmits under matching coordinates.
  std::uint64_t epoch = 0;
  // Sender boot incarnation (durable, monotone boot counter; >= 1 on
  // every live server).  Flow control uses it to detect a restarted
  // sender whose credit admission count started over
  // (CreditReceiverLink::ObserveSession).  Encoded as an optional
  // trailing varint: 0 means "absent" and is never written, so pre-flow
  // frames (and stores holding them) decode unchanged.
  std::uint64_t incarnation = 0;
  // Causal core that produced the stamp (clocks::CausalCoreKind).  Tag
  // 0 -- the matrix core, the only one that predates this field -- is
  // never written, keeping matrix-core frames byte-identical to
  // pre-core ones.  A non-zero tag forces the incarnation varint out
  // (even when 0) so the two trailers stay positionally unambiguous.
  // Receivers fence frames whose tag differs from the domain's active
  // core the same way epoch mismatches are fenced: drop without acking.
  std::uint8_t core_tag = 0;

  friend bool operator==(const DataFrame&, const DataFrame&) = default;

  // Serialize() draws its buffer from the calling thread's BufferPool;
  // the receiving decode releases it.  SerializeInto appends to a
  // caller-owned writer (batched encode paths).
  [[nodiscard]] Bytes Serialize() const;
  void SerializeInto(ByteWriter& out) const;
  [[nodiscard]] static Result<DataFrame> Deserialize(
      std::span<const std::uint8_t> bytes);

  // Frame body without re-serializing twice; used for wire accounting.
  [[nodiscard]] std::size_t SerializedSize() const;
};

struct AckFrame {
  // Every message accepted (delivered, held or recognized as duplicate)
  // from one peer in one receive batch.  May be empty for a credit-only
  // ack (a flow-control replenish carrying no acknowledgements).
  std::vector<MessageId> messages;

  // Piggybacked flow-control grant: the CUMULATIVE number of frames the
  // acking server is willing to have admitted on the (peer -> self)
  // link (src/flow/credits.h).  Cumulative and monotone, so a lost or
  // reordered ack never shrinks the sender's window.  Optional on the
  // wire: a trailing flags byte distinguishes frames with and without
  // it, so pre-flow frames decode unchanged.
  bool has_credit = false;
  std::uint64_t credit = 0;

  // Restart-renegotiation trio riding with the grant (flags bit 1):
  // `session` is the acking server's own boot incarnation -- a change
  // tells the sender the grant numbering restarted -- `echo` is the
  // sender incarnation the receiver computed the grant against, so a
  // freshly rebooted sender can discard grants still numbered for its
  // previous life, and `accepted` is the receiver's authoritative
  // accepted count for this session, against which the sender
  // reconciles its admission count
  // (CreditSenderLink::Reconcile).  Reconciliation -- rather than dead
  // reckoning -- is what keeps the two counters paired across crash/
  // restart on EITHER end: a restarted sender's recovery emissions and
  // a restarted receiver's re-counted retransmissions both desync a
  // local count, permanently widening (runaway backlog) or narrowing
  // (wedged link) the window.
  bool has_session = false;
  std::uint64_t session = 0;
  std::uint64_t echo = 0;
  std::uint64_t accepted = 0;

  AckFrame() = default;
  explicit AckFrame(MessageId id) : messages{id} {}
  explicit AckFrame(std::vector<MessageId> ids) : messages(std::move(ids)) {}

  friend bool operator==(const AckFrame&, const AckFrame&) = default;

  [[nodiscard]] Bytes Serialize() const;
};

// Frame type discriminator, without decoding the body.
[[nodiscard]] Result<FrameType> PeekFrameType(
    std::span<const std::uint8_t> bytes);

// Decodes the ack body (after the type byte).
[[nodiscard]] Result<AckFrame> DeserializeAck(
    std::span<const std::uint8_t> bytes);

}  // namespace cmom::mom
