// Agents: the AAA programming model.
//
// Agents are autonomous reactive objects executing concurrently and
// communicating through an event/reaction pattern (Section 3).  An
// agent lives on one server, reacts to delivered messages one at a
// time, and its reaction is atomic: the state mutation it performs and
// the messages it sends are committed together, so a crash either
// happened entirely before the reaction or entirely after it.
//
// Agents are persistent: EncodeState/DecodeState serialize the agent's
// durable state; the Engine saves it on every reaction commit and
// restores it during recovery.
#pragma once

#include <string>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/status.h"
#include "mom/message.h"

namespace cmom::mom {

// Capabilities available to an agent during a reaction.  Sends made
// through the context are buffered and committed atomically with the
// reaction; they enter the Channel only after the commit succeeds.
class ReactionContext {
 public:
  virtual ~ReactionContext() = default;

  [[nodiscard]] virtual AgentId self() const = 0;

  // Sends `payload` to agent `to` (any server); ordering toward a
  // given destination follows causal order, as guaranteed by the bus.
  virtual void Send(AgentId to, std::string subject, Bytes payload) = 0;

  // Convenience overload for payload-less events.
  void Send(AgentId to, std::string subject) {
    Send(to, std::move(subject), Bytes{});
  }

  // Current time (simulated or wall-clock, depending on the runtime).
  [[nodiscard]] virtual std::uint64_t NowNs() const = 0;

  // Retires a message this agent cannot buffer (e.g. a bounded pubsub
  // queue past its depth limit) into a persistent dead-letter record
  // (src/flow/dead_letter.h), committed atomically with the reaction.
  // The default ignores the request, so agents under harnesses that do
  // not persist dead letters simply drop.
  virtual void DeadLetter(std::string reason, const Message& original) {
    (void)reason;
    (void)original;
  }
};

class Agent {
 public:
  virtual ~Agent() = default;

  // Handles one delivered message.  Must not block; long work should be
  // split by sending messages to oneself.
  virtual void React(ReactionContext& ctx, const Message& message) = 0;

  // Durable state image.  The default is a stateless agent.
  virtual void EncodeState(ByteWriter& out) const { (void)out; }
  [[nodiscard]] virtual Status DecodeState(ByteReader& in) {
    (void)in;
    return Status::Ok();
  }
};

}  // namespace cmom::mom
