#include "mom/file_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/crc32.h"
#include "common/log.h"

namespace cmom::mom {

namespace {
constexpr std::uint8_t kOpPut = 0x01;
constexpr std::uint8_t kOpDelete = 0x02;

constexpr const char* kWalName = "wal.log";
constexpr const char* kSnapshotName = "snapshot.log";
constexpr const char* kSnapshotTmpName = "snapshot.log.tmp";
}  // namespace

FileStore::FileStore(std::filesystem::path directory, FileStoreOptions options)
    : directory_(std::move(directory)), options_(options) {}

FileStore::~FileStore() {
  if (wal_ != nullptr) std::fclose(wal_);
}

Result<std::unique_ptr<FileStore>> FileStore::Open(
    const std::filesystem::path& directory, FileStoreOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Unavailable("create_directories: " + ec.message());
  }
  auto store = std::unique_ptr<FileStore>(new FileStore(directory, options));

  // An orphaned snapshot.log.tmp means a crash during compaction before
  // the rename; the old snapshot + WAL are still authoritative.
  std::filesystem::remove(directory / kSnapshotTmpName, ec);

  CMOM_RETURN_IF_ERROR(store->LoadFrom(directory / kSnapshotName));
  std::uintmax_t wal_valid_bytes = 0;
  CMOM_RETURN_IF_ERROR(
      store->LoadFrom(directory / kWalName, &wal_valid_bytes));
  // Every replayed transaction staged ops into the cache; make them the
  // committed image without counting them as new writes.
  CMOM_RETURN_IF_ERROR(store->cache_.Commit());

  // A torn tail (crash or ENOSPC mid-append) was discarded by the
  // replay; cut it off the file too, or the next append would land at
  // a misaligned offset and shadow itself on the following reload.
  const std::uintmax_t wal_file_bytes =
      std::filesystem::exists(directory / kWalName, ec)
          ? std::filesystem::file_size(directory / kWalName, ec)
          : 0;
  if (!ec && wal_file_bytes > wal_valid_bytes) {
    std::filesystem::resize_file(directory / kWalName, wal_valid_bytes, ec);
    if (ec) {
      return Status::Unavailable("cannot truncate torn WAL tail: " +
                                 ec.message());
    }
  }

  store->wal_ = std::fopen((directory / kWalName).c_str(), "ab");
  if (store->wal_ == nullptr) {
    return Status::Unavailable("cannot open WAL for append");
  }
  store->wal_bytes_ = wal_valid_bytes;
  return {std::move(store)};
}

Status FileStore::LoadFrom(const std::filesystem::path& file,
                           std::uintmax_t* valid_bytes) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  std::FILE* in = std::fopen(file.c_str(), "rb");
  if (in == nullptr) return Status::Ok();  // absent file = empty
  std::error_code size_ec;
  const std::uintmax_t file_size =
      std::filesystem::file_size(file, size_ec);
  std::uintmax_t consumed = 0;
  Status status = Status::Ok();
  while (true) {
    std::uint8_t header[8];
    const std::size_t got = std::fread(header, 1, sizeof(header), in);
    if (got == 0) break;
    if (got < sizeof(header)) break;  // torn tail: discard
    consumed += sizeof(header);
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    std::memcpy(&length, header, 4);
    std::memcpy(&crc, header + 4, 4);
    // A corrupt header may claim more bytes than the file holds; treat
    // it as a torn tail rather than allocating from it.
    if (!size_ec && consumed + length > file_size) break;
    consumed += length;
    Bytes body(length);
    if (std::fread(body.data(), 1, length, in) < length) break;  // torn
    if (Crc32(body) != crc) {
      CMOM_LOG(kWarning) << "discarding corrupt transaction in "
                         << file.string();
      break;
    }
    ByteReader reader(body);
    while (!reader.exhausted()) {
      auto op = reader.ReadU8();
      if (!op.ok()) {
        status = op.status();
        break;
      }
      auto key = reader.ReadString();
      if (!key.ok()) {
        status = key.status();
        break;
      }
      if (op.value() == kOpPut) {
        auto value = reader.ReadBytes();
        if (!value.ok()) {
          status = value.status();
          break;
        }
        cache_.Put(key.value(), std::move(value).value());
      } else if (op.value() == kOpDelete) {
        cache_.Delete(key.value());
      } else {
        status = Status::DataLoss("unknown WAL op");
        break;
      }
    }
    if (!status.ok()) break;
    if (valid_bytes != nullptr) *valid_bytes = consumed;
  }
  std::fclose(in);
  return status;
}

void FileStore::Put(std::string_view key, Bytes value) {
  staged_.push_back(StagedOp{std::string(key), value});
  cache_.Put(key, std::move(value));
}

void FileStore::Delete(std::string_view key) {
  staged_.push_back(StagedOp{std::string(key), std::nullopt});
  cache_.Delete(key);
}

std::optional<Bytes> FileStore::Get(std::string_view key) {
  return cache_.Get(key);
}

std::vector<std::string> FileStore::Keys(std::string_view prefix) {
  return cache_.Keys(prefix);
}

Status FileStore::Commit() {
  if (wal_poisoned_) {
    // A previous append failed partway: the WAL tail is torn, and any
    // further record would land at a misaligned offset and be eaten by
    // the CRC scan together with the torn prefix.  The store is
    // read-only until reopened (the server fail-stops on the first
    // failure, so this is a backstop, not a recovery path).
    return Status::Unavailable("WAL tail torn by earlier write failure");
  }
  ByteWriter body;
  for (const StagedOp& op : staged_) {
    if (op.value.has_value()) {
      body.WriteU8(kOpPut);
      body.WriteString(op.key);
      body.WriteBytes(*op.value);
    } else {
      body.WriteU8(kOpDelete);
      body.WriteString(op.key);
    }
  }
  CMOM_RETURN_IF_ERROR(AppendTransaction(body.buffer()));
  staged_.clear();
  CMOM_RETURN_IF_ERROR(cache_.Commit());
  if (wal_bytes_ > compaction_threshold_bytes_) {
    CMOM_RETURN_IF_ERROR(Compact());
  }
  return Status::Ok();
}

void FileStore::Rollback() {
  staged_.clear();
  cache_.Rollback();
}

Status FileStore::Compact() {
  const auto tmp = directory_ / kSnapshotTmpName;
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) return Status::Unavailable("cannot write snapshot");
  ByteWriter body;
  for (const std::string& key : cache_.Keys("")) {
    auto value = cache_.Get(key);
    if (!value) continue;
    body.WriteU8(kOpPut);
    body.WriteString(key);
    body.WriteBytes(*value);
  }
  const Bytes& bytes = body.buffer();
  std::uint8_t header[8];
  const std::uint32_t length = static_cast<std::uint32_t>(bytes.size());
  const std::uint32_t crc = Crc32(bytes);
  std::memcpy(header, &length, 4);
  std::memcpy(header + 4, &crc, 4);
  bool ok = std::fwrite(header, 1, sizeof(header), out) == sizeof(header);
  ok = ok && (bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size());
  ok = ok && std::fflush(out) == 0;
  // The snapshot must be durable before the rename makes it
  // authoritative; otherwise a power cut could leave a renamed-but-empty
  // snapshot shadowing a truncated WAL.
  ok = ok && SyncFile(out).ok();
  std::fclose(out);
  if (!ok) return Status::Unavailable("snapshot write failed");

  std::error_code ec;
  std::filesystem::rename(tmp, directory_ / kSnapshotName, ec);
  if (ec) return Status::Unavailable("snapshot rename: " + ec.message());

  // Truncate the WAL: its contents are now folded into the snapshot.
  if (wal_ != nullptr) std::fclose(wal_);
  wal_ = std::fopen((directory_ / kWalName).c_str(), "wb");
  if (wal_ == nullptr) return Status::Unavailable("cannot truncate WAL");
  wal_bytes_ = 0;
  return Status::Ok();
}

Status FileStore::AppendTransaction(const Bytes& body) {
  std::uint8_t header[8];
  const std::uint32_t length = static_cast<std::uint32_t>(body.size());
  const std::uint32_t crc = Crc32(body);
  std::memcpy(header, &length, 4);
  std::memcpy(header + 4, &crc, 4);
  if (wal_write_limit_armed_) {
    // Injected ENOSPC: put the first `wal_write_limit_` bytes of the
    // record on disk -- a torn prefix the CRC check throws away on the
    // next load -- and report the device full.
    wal_write_limit_armed_ = false;
    const std::size_t header_part = static_cast<std::size_t>(
        std::min<std::uint64_t>(wal_write_limit_, sizeof(header)));
    std::size_t wrote = std::fwrite(header, 1, header_part, wal_);
    if (wrote == header_part && wal_write_limit_ > sizeof(header)) {
      const std::size_t body_part = static_cast<std::size_t>(
          std::min<std::uint64_t>(wal_write_limit_ - sizeof(header),
                                  body.size()));
      wrote += std::fwrite(body.data(), 1, body_part, wal_);
    }
    (void)std::fflush(wal_);
    wal_bytes_ += wrote;
    wal_poisoned_ = true;
    return Status::Unavailable("injected WAL write failure (ENOSPC)");
  }
  if (std::fwrite(header, 1, sizeof(header), wal_) != sizeof(header)) {
    wal_poisoned_ = true;
    return Status::Unavailable("WAL write failed");
  }
  if (!body.empty() &&
      std::fwrite(body.data(), 1, body.size(), wal_) != body.size()) {
    wal_poisoned_ = true;
    return Status::Unavailable("WAL write failed");
  }
  if (std::fflush(wal_) != 0) {
    wal_poisoned_ = true;
    return Status::Unavailable("WAL flush failed");
  }
  CMOM_RETURN_IF_ERROR(SyncFile(wal_));
  wal_bytes_ += sizeof(header) + body.size();
  return Status::Ok();
}

Status FileStore::SyncFile(std::FILE* file) {
  if (options_.sync_mode == SyncMode::kNone) return Status::Ok();
  const auto start = std::chrono::steady_clock::now();
  if (::fdatasync(::fileno(file)) != 0) {
    return Status::Unavailable("fdatasync failed");
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  const auto sample = static_cast<std::uint64_t>(elapsed);
  // EWMA with alpha = 1/8: smooth enough to ignore a single outlier
  // sync, fresh enough to track a device whose queue built up.
  sync_latency_ewma_ns_ = sync_latency_ewma_ns_ == 0
                              ? sample
                              : (7 * sync_latency_ewma_ns_ + sample) / 8;
  ++sync_calls_;
  return Status::Ok();
}

}  // namespace cmom::mom
