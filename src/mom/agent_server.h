// Agent server: Engine + Channel (Sections 3 and 5).
//
// One AgentServer hosts agents (the Engine side) and moves messages
// (the Channel side).  The Channel owns one DomainItem per domain the
// server belongs to -- a causal router-server has several -- each with
// its own matrix clock and hold-back queue, plus the QueueOUT of
// stamped messages awaiting acknowledgment.  The Engine owns QueueIN
// and runs agent reactions.
//
// Every protocol step is a transaction against the server's Store:
//
//   send      : assign id, stamp with the link domain's clock, append
//               to QueueOUT, commit, then emit the frame
//   receive   : check the stamp against the domain's clock;
//               deliver -> merge clock, push QueueIN (final dest) or
//                          stamp for the next hop and append QueueOUT
//                          (router), commit, then ACK
//               hold    -> persist in the hold-back queue, commit, ACK
//               dup     -> just ACK
//   reaction  : pop QueueIN, run Agent::React, persist agent state and
//               the stamped sends it produced, commit, emit frames
//
// Batching: incoming frames land in an inbox and are drained up to
// `channel_batch` per work item, committing the whole batch in ONE
// store transaction and coalescing the acks into one frame per peer.
// Likewise the Engine drains up to `engine_batch` QueueIN messages per
// work item and commits all their reactions together.  Batches are
// still atomic, so exactly-once causal delivery is unaffected; under
// load the commit (and ack) count per message drops toward 1/batch.
//
// Persistence is incremental (PersistMode::kIncremental, the default):
// QueueOUT, QueueIN and the hold-back queues live under per-entry store
// keys written and deleted individually, and each domain's clock image
// is rewritten only when its version advanced -- so commit bytes per
// message are O(1) in the backlog instead of O(backlog), the disk-layer
// analogue of the Appendix A delta stamps.  PersistMode::kFullImage
// keeps the historical whole-image rewrite for baseline measurements;
// a store written by it is migrated to the incremental schema once, on
// the first incremental Boot.
//
// Unacknowledged QueueOUT entries are retransmitted with their original
// stamp; the receiver's clock check recognizes and drops duplicates, so
// the bus delivers exactly once across frame loss and server crashes.
//
// Processing-cost simulation: with a CostModel configured (simulated
// runs), each transaction charges
//     per_hop_fixed + clock_entries * per_clock_entry
//                   + committed_bytes * per_disk_byte + disk_sync
// of simulated time before its outputs (frames, next transaction)
// become visible, and transactions of one server serialize -- modelling
// the single-threaded Java server of the paper.  Without a CostModel,
// work runs inline at wall-clock speed.
//
// Parallel engine (engine_workers > 0, wall-clock runtimes only): the
// single work loop becomes a three-stage pipeline.
//
//   Channel stage   unchanged lock + batching; after the clock check a
//                   deliverable message is persisted under its qin/ key
//                   and DISPATCHED to an engine shard instead of
//                   queueing an inline EngineStep.
//   Engine stage    a pool of shard workers (an Executor lane per
//                   worker).  The destination agent id hashes to a
//                   lane, so one agent's reactions run serially in
//                   QueueIN (= causal delivery) order while different
//                   agents react concurrently.  A worker runs React
//                   without any server lock and emits a ReactionResult:
//                   the agent image it encoded, the sends the reaction
//                   buffered, and the consumed qin/ sequence.
//   Commit stage    an ordinary work item that drains every completed
//                   ReactionResult and commits the whole group in ONE
//                   store transaction -- qin/ deletions, one image per
//                   touched agent, stamped QueueOUT entries -- and only
//                   then releases the produced frames.  Atomic-reaction
//                   and exactly-once guarantees are untouched: a
//                   reaction is speculative until its group commits,
//                   and its input stays durable in qin/ until then.
//
// engine_workers = 0 (the default) keeps the historical inline engine;
// simulated runs always use it (SimRuntime::MakeExecutor returns
// nullptr), so CostModel traces stay bit-identical.  The parallel
// engine requires PersistMode::kIncremental: full-image commits cannot
// represent reactions that are in flight outside queue_in_.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "causality/trace.h"
#include "clocks/causal_clock.h"
#include "clocks/causal_core.h"
#include "clocks/holdback.h"
#include "common/histogram.h"
#include "common/ids.h"
#include "common/status.h"
#include "domains/deployment.h"
#include "flow/credits.h"
#include "flow/dead_letter.h"
#include "flow/drr.h"
#include "mom/agent.h"
#include "mom/message.h"
#include "mom/store.h"
#include "net/cost_model.h"
#include "net/runtime.h"
#include "net/transport.h"

namespace cmom::mom {

enum class PersistMode : std::uint8_t {
  kIncremental = 0,  // per-entry keys + dirty-flagged clock images
  kFullImage = 1,    // historical monolithic blobs, rewritten per commit
};

struct AgentServerOptions {
  // Non-null enables simulated processing costs (see header comment).
  const net::CostModel* cost_model = nullptr;
  // Non-null records application-level send/deliver events.
  causality::TraceRecorder* trace = nullptr;
  // Delay before an unacknowledged QueueOUT entry is resent.
  std::uint64_t retransmit_timeout_ns = 500ull * 1000 * 1000;
  // Safety valve for runaway retransmission (0 = unlimited).
  std::uint32_t max_retransmit_attempts = 0;
  // Durable-image layout (see header comment).
  PersistMode persist_mode = PersistMode::kIncremental;
  // Max QueueIN messages reacted to per Engine work item (one commit).
  std::size_t engine_batch = 16;
  // Max inbox frames processed per Channel work item (one commit, acks
  // coalesced per peer).
  std::size_t channel_batch = 16;
  // Engine shard workers (see header comment).  0 = historical inline
  // engine.  >0 requires a runtime whose MakeExecutor returns real
  // threads (ThreadRuntime) and PersistMode::kIncremental; otherwise
  // the server falls back to inline mode at Boot.
  std::size_t engine_workers = 0;
  // Config epoch this server runs under (src/control reconfiguration).
  // Stamped into every outgoing DataFrame; frames from a different
  // epoch are dropped unacknowledged.  Boot cross-checks the value
  // against the store's "epoch/current" record when one exists.
  std::uint64_t epoch = 0;
  // Adaptive ack/credit coalescing window.  0 (the default) flushes the
  // staged acks after every Channel batch -- the historical behavior.
  // >0 holds them up to this long so consecutive batches collapse into
  // one AckFrame per peer per window; a grant that would unblock a
  // credit-paused sender still flushes immediately (the ack carries the
  // cumulative credit trailer that reopens the window), so coalescing
  // trades ack-frame count for latency only where nobody is waiting.
  std::uint64_t ack_coalesce_ns = 0;
  // End-to-end flow control and overload protection (src/flow): credit
  // windows on server-to-server links, deficit-round-robin forwarding
  // on routers (requires PersistMode::kIncremental), and engine
  // admission control for local sends.  Enabled by default with
  // watermarks generous enough to be invisible under nominal load;
  // flow.enabled = false reproduces the historical unbounded behavior.
  flow::FlowOptions flow;
};

// The power-of-two-bucketed histogram lives in common/histogram.h now
// (net/ lane instrumentation shares it); re-exported here because the
// stats plumbing and tests historically name it mom::LogHistogram.
using ::cmom::LogHistogram;

struct ServerStats {
  std::uint64_t messages_sent = 0;        // application sends originated
  std::uint64_t messages_delivered = 0;   // delivered to local agents
  std::uint64_t messages_forwarded = 0;   // routed onward (router role)
  std::uint64_t frames_received = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t holdback_peak = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t stamp_bytes_sent = 0;     // wire cost of causal stamps
  std::uint64_t commits = 0;
  std::uint64_t commit_bytes = 0;         // store bytes over all commits
  std::uint64_t ack_frames_sent = 0;      // after coalescing
  std::uint64_t acks_sent = 0;            // message ids acknowledged
  // Adaptive ack coalescing (ack_coalesce_ns > 0): flushes forced by
  // the window timer vs flushed early because the credit grant could
  // unblock a paused sender.
  std::uint64_t ack_flush_timer = 0;
  std::uint64_t ack_flush_unblock = 0;
  // Frames the transport refused (e.g. supervised outbox overflow);
  // each is covered by a later QueueOUT retransmission.
  std::uint64_t transport_send_failures = 0;
  // Data frames dropped (unacked) because their epoch differed from
  // this server's -- stragglers around a reconfiguration cutover.
  std::uint64_t epoch_fenced_frames = 0;
  // Data frames dropped (unacked) because their causal-core tag did not
  // match the receiving domain's active core: the stamp is encoded in a
  // coordinate system this server does not run.
  std::uint64_t core_fenced_frames = 0;
  // SendMessage calls rejected while an epoch fence was up.
  std::uint64_t fenced_sends_rejected = 0;
  // --- flow control (src/flow) ---------------------------------------
  // First emissions delayed because the link's credit window was
  // exhausted (each later released; never dropped).
  std::uint64_t credit_blocked = 0;
  // Replenish AckFrames carrying a grant but no message ids.
  std::uint64_t credit_only_acks = 0;
  // Liveness probes that force-emitted a blocked frame to solicit a
  // fresh grant from a silent peer.
  std::uint64_t credit_probes = 0;
  // High-water of the receiver backlog (see ReceiverBacklogLocked)
  // observed while accepting remote frames.  Effective credit pacing
  // bounds it near high_watermark + in-flight slack; a runaway value
  // means a peer's window escaped the grant discipline.
  std::uint64_t backlog_peak = 0;
  // Deficit-round-robin forwarding: rounds walked and messages moved
  // through the per-domain staging queues (router role only).
  std::uint64_t drr_rounds = 0;
  std::uint64_t drr_forwarded = 0;
  std::uint64_t staged_forward_peak = 0;
  // Engine admission: local sends parked on the bounded wait queue,
  // and sends rejected with kOverloaded once it was full.
  std::uint64_t sends_deferred = 0;
  std::uint64_t sends_shed = 0;
  std::uint64_t wait_queue_peak = 0;
  // Messages retired to persistent dlq/ records (slow consumers).
  std::uint64_t dead_letters = 0;
  // Subset of transport_send_failures with a kOverloaded status (peer
  // alive but shedding; distinct from disconnects).
  std::uint64_t transport_overloads = 0;
  LogHistogram commit_bytes_hist;   // bytes per store commit
  LogHistogram engine_batch_hist;   // reactions per Engine work item
  LogHistogram channel_batch_hist;  // frames per Channel work item
  // Causal-core wire cost: encoded stamp bytes per outgoing message and
  // hold-back queue depth observed when a frame was parked.
  LogHistogram stamp_bytes_hist;
  LogHistogram holdback_depth_hist;
  // Parallel engine only (engine_workers > 0):
  LogHistogram group_commit_hist;  // reactions per commit-stage txn
  LogHistogram shard_depth_hist;   // shard queue depth at dispatch
  std::vector<std::uint64_t> worker_reactions;  // reactions run per shard
  std::vector<std::uint64_t> worker_busy_ns;    // React wall time per shard
  // Executor hand-off instrumentation, aggregated over all lanes
  // (net::Executor::LaneStats): ring posts, posts that spilled to the
  // overflow queue, consumer parks, and the consumer-side queue-depth /
  // stall-time histograms.
  std::uint64_t lane_posts = 0;
  std::uint64_t lane_overflow_posts = 0;
  std::uint64_t lane_parks = 0;
  LogHistogram lane_depth_hist;
  LogHistogram lane_stall_ns_hist;
};

class AgentServer {
 public:
  // `deployment`, `endpoint`, `runtime` and `store` must outlive the
  // server.  `self` must be one of the deployment's servers and match
  // the endpoint's identity.
  AgentServer(const domains::Deployment& deployment, ServerId self,
              net::Endpoint* endpoint, net::Runtime* runtime, Store* store,
              AgentServerOptions options = {});
  ~AgentServer();

  AgentServer(const AgentServer&) = delete;
  AgentServer& operator=(const AgentServer&) = delete;

  // Registers an agent under a server-local id.  Must happen before
  // Boot(); the same ids must be attached again when rebooting after a
  // crash so persistent state can be restored.
  AgentId AttachAgent(std::uint32_t local_id, std::unique_ptr<Agent> agent);

  // Recovers durable state from the store (first boot initializes it),
  // installs the receive handler and resumes pending work
  // (retransmissions, queued reactions).
  [[nodiscard]] Status Boot();

  // Stops accepting frames and timers.  Pending durable state remains
  // in the store for the next Boot.
  void Shutdown();

  // Crash-test teardown barrier: Shutdown() plus waiting out (and
  // permanently barring) every pending runtime callback.  After Halt
  // returns the server never touches its endpoint again, so a chaos
  // test may destroy the endpoint before the server object --
  // simulating a whole-process kill one subsystem at a time.
  void Halt();

  // Application-level send on behalf of a local agent.  Thread-safe.
  // `from.server` must be this server.
  Result<MessageId> SendMessage(AgentId from, AgentId to, std::string subject,
                                Bytes payload = {});

  [[nodiscard]] ServerId self() const { return self_; }
  [[nodiscard]] std::uint64_t epoch() const { return options_.epoch; }
  [[nodiscard]] ServerStats stats() const;

  // OK while the server is live; the kFailStop status after a durable
  // write or commit failure halted it.  A halted server rejects
  // SendMessage and control records with that same status, commits
  // nothing, emits no frames and drops incoming ones -- the store holds
  // exactly the last successful commit, which is what a restart (a new
  // AgentServer over the same store) recovers.
  [[nodiscard]] Status health() const;

  // --- epoch fence (quiesce phase of a reconfiguration) ---------------
  // While the fence is up, SendMessage returns Unavailable; everything
  // already accepted keeps flowing (routing, retransmission, reactions)
  // so the server drains toward the quiesced state the cutover needs.
  // Snapshot of the drain progress; `drained` means no local work is
  // pending anywhere -- but only the coordinator, seeing every server
  // drained *simultaneously*, may conclude the cluster is quiesced
  // (a peer could still hold an unacked frame addressed to us).
  struct FenceStatus {
    bool active = false;
    bool drained = false;
    std::size_t queue_out = 0;
    std::size_t queue_in = 0;
    std::size_t holdback = 0;
    std::size_t inflight = 0;  // dispatched reactions + queued work items
  };
  void BeginFence();
  void LiftFence();
  [[nodiscard]] FenceStatus fence_status() const;

  // Snapshot of the flow-control state (src/flow): per-link credit
  // gauges plus the staging/wait queue depths.  Tests, momtool and the
  // flow bench read this to assert backlogs stay under the watermarks.
  struct FlowStatus {
    std::size_t paused_links = 0;        // links with blocked frames
    std::size_t blocked_messages = 0;    // frames awaiting first emission
    std::uint64_t credits_outstanding = 0;  // unused window over all links
    std::size_t staged_forwards = 0;     // DRR staging queue depth
    std::size_t wait_queue = 0;          // admission wait queue depth
    std::uint64_t dead_letters = 0;
  };
  [[nodiscard]] FlowStatus flow_status() const;

  // Cumulative application sends originated on this server, keyed by
  // destination server.  The autopilot observer differences consecutive
  // snapshots per observation window to rebuild a live
  // origin->destination TrafficProfile without touching the hot path.
  [[nodiscard]] std::vector<std::pair<ServerId, std::uint64_t>>
  OriginatedByDestination() const;

  // Durably applies one control-plane record write (delete when `value`
  // is nullopt) through the server's own transaction pipeline, so it
  // serializes with protocol commits -- an outside Commit on a live
  // server's store would flush whatever transaction is half-staged.
  // Blocks until the record committed; wall-clock runtimes only (under
  // a simulated CostModel the charge continuation would deadlock the
  // caller).
  [[nodiscard]] Status ApplyControlRecord(std::string_view key,
                                          std::optional<Bytes> value);

  // Number of held-back (causally premature) messages over all domains.
  [[nodiscard]] std::size_t holdback_size() const;
  // Unacknowledged outgoing messages.
  [[nodiscard]] std::size_t queue_out_size() const;
  // True when no transaction is running or queued.
  [[nodiscard]] bool Idle() const;

  // Matrix clock of the domain item for deployment domain `index`
  // (tests / introspection).  Null when the domain runs a non-matrix
  // causal core.
  [[nodiscard]] const clocks::CausalDomainClock* FindDomainClock(
      std::size_t deployment_domain_index) const;

  // Active causal core per domain this server belongs to, in domain-
  // item order (momtool's causal-core stats row).
  [[nodiscard]] std::vector<std::pair<DomainId, clocks::CausalCoreKind>>
  ActiveCores() const;

  // Canonical serialization of the volatile channel + engine image
  // (meta, clocks, QueueOUT, QueueIN, hold-back queues, in order).
  // Test hook: two servers that must be in equivalent states -- e.g.
  // recovered from a full-image store vs an incremental one after
  // identical deterministic traffic -- must produce identical bytes.
  [[nodiscard]] Bytes DebugImage() const;

 private:
  struct HeldFrame {
    DomainServerId src_local;
    DataFrame frame;
  };

  struct DomainItem {
    std::size_t deployment_index = 0;
    DomainId id;
    DomainServerId self_local;
    // Causal-delivery core for this domain (clocks/causal_core.h); the
    // kind comes from the deployment config (MomConfig::CoreFor).
    std::unique_ptr<clocks::CausalCore> core;
    clocks::HoldbackQueue<HeldFrame> holdback;
    // MessageId index over `holdback` (O(1) duplicate-held check and
    // per-entry key deletion); always in sync with the queue.
    std::unordered_set<MessageId> held_ids;
    // core->version() at the last durable write; the core image is
    // re-persisted only when the live version differs.
    std::uint64_t persisted_clock_version = 0;
  };

  struct OutEntry {
    Message message;
    ServerId next_hop;
    DomainId domain;
    clocks::Stamp stamp;
    std::uint32_t attempts = 0;
    // Monotonic enqueue ticket; persisted so recovery rebuilds QueueOUT
    // in original order even though store keys sort by message id.
    std::uint64_t enqueue_seq = 0;
  };

  struct InEntry {
    std::uint64_t seq = 0;  // key suffix of the qin/ store entry
    Message message;
  };

  // A unit of transactional work.  Returns the number of clock entries
  // it touched; outputs are collected in pending_frames_ /
  // engine_step_needed_ and released once the simulated cost elapsed.
  using Work = std::function<std::size_t()>;

  // --- work serialization -------------------------------------------
  void Post(Work work);
  void PumpLocked();

  // --- channel -------------------------------------------------------
  void HandleFrame(ServerId from, Bytes frame);
  // Processes up to channel_batch inbox frames in one transaction.
  std::size_t DrainInbox();
  std::size_t ProcessDataFrame(ServerId from, DataFrame frame);
  std::size_t ProcessAck(ServerId from, const AckFrame& ack);
  // Delivers a checked frame: local QueueIN or forward.  Returns clock
  // entries touched.
  std::size_t CommitDelivery(DomainItem& item, DomainServerId src_local,
                             DataFrame&& frame);
  // Re-examines the hold-back queue after a clock change; returns the
  // clock entries touched by the deliveries it unblocked.
  std::size_t DrainHoldback(DomainItem& item);
  // Stamps `message` toward its destination and appends to QueueOUT;
  // returns entries touched.  Emits the data frame.
  std::size_t StampAndEnqueue(Message message);
  // Batch variant for the engine commit path: stamps a run of messages
  // sharing the next hop with one MatrixClock pass (PrepareSendBatch)
  // instead of one lock round-trip per message.  Produces stamps
  // byte-identical to sequential StampAndEnqueue calls.
  std::size_t StampAndEnqueueBatch(std::vector<Message> messages);
  // Shared tail of both paths: persists, enqueues and emits one
  // already-stamped OutEntry.  Returns clock entries touched.
  std::size_t EnqueueStampedLocked(OutEntry entry);
  void EmitFrame(ServerId to, Bytes bytes);
  // Records an accepted message for the end-of-batch coalesced ack.
  void StageAck(ServerId peer, MessageId id);
  // Turns staged acks into one AckFrame per peer (after the commit).
  void FlushStagedAcks();
  // ack_coalesce_ns > 0 path: flushes immediately when a grant would
  // unblock a paused sender, else arms the window timer.
  void MaybeCoalesceAcksLocked();
  void FlushFrames(std::vector<std::pair<ServerId, Bytes>> frames);
  // Schedules the next retransmission check for `id`.  The delay grows
  // exponentially with the attempts already made (capped at 64x the
  // base timeout) so a backlogged peer is probed, not bombarded.
  void ScheduleRetransmit(MessageId id, std::uint32_t attempts_so_far);

  // --- flow control (src/flow) ----------------------------------------
  // Per-peer credit bookkeeping, created on first use.
  [[nodiscard]] flow::CreditSenderLink& SenderLink(ServerId peer);
  [[nodiscard]] flow::CreditReceiverLink& ReceiverLink(ServerId peer);
  // Emits blocked frames toward `peer` while the window has headroom
  // (or unconditionally when `force`: fence bypass).  Caller holds
  // mutex_ inside a work item.  Returns frames released.
  std::size_t ReleaseBlocked(ServerId peer, bool force);
  // Arms the per-peer liveness probe: if the link toward `peer` is
  // still paused when it fires, one blocked frame is force-emitted so
  // the peer's ack (with a fresh cumulative grant) can reopen a window
  // whose replenish ack was lost.  At most one armed per peer.
  void ScheduleCreditProbe(ServerId peer);
  // Backlog the receiver advertises against: everything accepted but
  // not yet reacted to or forwarded on (QueueIN + in-flight reactions +
  // held frames + DRR staging).
  [[nodiscard]] std::size_t ReceiverBacklogLocked() const;
  // Pushes credit-only acks to paused peers once the backlog has
  // drained below the low watermark.  Caller holds mutex_ inside a
  // work item.
  void MaybeReplenishCredits();
  // Router fair scheduling: parks a forwarded message in the per-source
  // DRR staging queue, persisted under its fwd/ key in the SAME
  // transaction as the delivery that produced it.  Incremental mode
  // only.
  void StageForward(DomainId source, Message message);
  // Work item draining the DRR staging queue: stamps each released
  // message toward its next hop and deletes its fwd/ key, one commit
  // per batch.
  std::size_t ForwardStep();
  // Stamps EVERY staged forward immediately (no batching): the causal
  // barrier local-origin sends need before they may be stamped.
  std::size_t FlushForwardStageLocked();
  // Engine admission: queues a wait-queue drain work item when backlog
  // has fallen below the low threshold.  Caller holds mutex_.
  void MaybeScheduleWaitDrainLocked();
  std::size_t DrainWaitQueue();
  // Persists one dead-letter record (staged into the current
  // transaction).  Caller holds mutex_ inside a work item.
  void RecordDeadLetter(std::string reason, const Message& original);

  // --- engine ----------------------------------------------------------
  std::size_t EngineStep();
  std::size_t ApplySends(std::vector<Message> sends);

  // --- parallel engine -------------------------------------------------
  // A send buffered by a shard worker; MessageId assignment (and hence
  // stamping) is deferred to the commit stage so id order stays a
  // single-writer sequence under mutex_.
  struct PendingSend {
    AgentId from;
    AgentId to;
    std::string subject;
    Bytes payload;
  };
  // Everything a shard worker produced for one consumed QueueIN entry.
  struct ReactionResult {
    std::uint64_t in_seq = 0;       // qin/ key to erase at commit
    std::uint32_t agent_local = 0;  // agent that reacted
    bool has_image = false;         // false when the agent was missing
    Bytes agent_image;              // EncodeState() after the reaction
    std::vector<PendingSend> sends;
    // Messages the reaction shed (ReactionContext::DeadLetter);
    // persisted as dlq/ records in the same group commit.
    std::vector<flow::DeadLetterRecord> dead_letters;
  };

  // holdback_size() without taking mutex_ (receive-path internal use).
  [[nodiscard]] std::size_t HoldbackSizeLocked() const;

  [[nodiscard]] bool parallel_engine() const { return executor_ != nullptr; }
  [[nodiscard]] std::size_t ShardOf(std::uint32_t agent_local) const;
  // Channel/commit side: hands one delivered message to its shard lane.
  // Caller holds mutex_ and has already persisted the qin/ entry.
  void DispatchReaction(InEntry entry);
  // Worker side: runs React without server locks, queues the result.
  void RunReaction(std::size_t shard, InEntry entry);
  // Reactions the commit stage should wait for before scheduling, given
  // the store's observed fdatasync latency (1 = commit immediately).
  [[nodiscard]] std::size_t AdaptiveCommitTargetLocked() const;
  // Worker side: queues the commit-stage work item (at most one
  // outstanding).
  void ScheduleReactionCommit();
  // Commit stage: drains completed_reactions_, assigns ids, persists
  // agent images + qin/ erases + stamped sends in one transaction.
  std::size_t CommitReactions();
  // Routes a locally addressed message into the engine: persists the
  // qin/ entry then either dispatches to a shard (parallel) or appends
  // to queue_in_ (inline).  Shared by Channel delivery and local sends.
  void EnqueueLocalDelivery(Message message);

  // --- persistence ----------------------------------------------------
  [[nodiscard]] bool incremental() const {
    return options_.persist_mode == PersistMode::kIncremental;
  }
  // Staging wrappers: route every store mutation through these so
  // CommitLocked knows whether the transaction touched anything.
  void StorePut(std::string_view key, Bytes value);
  void StoreDelete(std::string_view key);
  void PersistMeta();
  void PersistClocks(bool force);
  void PersistQueueOut();     // full-image mode only
  void PersistQueueIn();      // full-image mode only
  void PersistHoldback();     // full-image mode only
  void PersistAgent(std::uint32_t local_id);
  // Incremental per-entry writes (no-ops in full-image mode, where the
  // whole queue blob is rewritten by CommitLocked instead).
  void PersistOutEntry(const OutEntry& entry);
  void EraseOutEntry(const OutEntry& entry);
  void PersistInEntry(const InEntry& entry);
  void EraseInEntry(const InEntry& entry);
  void PersistHeldFrame(const DomainItem& item, const HeldFrame& held,
                        std::uint64_t arrival_seq);
  void EraseHeldFrame(const DomainItem& item, MessageId id);
  [[nodiscard]] Status RecoverLocked();
  [[nodiscard]] Status RecoverLegacyLocked();
  [[nodiscard]] Status RecoverIncrementalLocked();
  // One-shot schema migration: deletes the legacy monolithic blobs and
  // writes the recovered state under per-entry keys.
  [[nodiscard]] Status MigrateToIncrementalLocked();
  // Commits the staged transaction.  On a store failure the server
  // FAIL-STOPS (FailStopLocked) and the halt status is returned; the
  // in-memory state that was never persisted must not keep running, or
  // exactly-once and causal recovery silently break.  Work items may
  // ignore the result -- the halt guards make every later step inert --
  // but Boot/recovery paths must propagate it.
  [[nodiscard]] Status CommitLocked();
  // Halts the server after a durable-write failure: records the typed
  // halt status, rolls the store back to its last committed image and
  // discards every staged output (frames, acks, trace events) so
  // nothing advertising un-durable state can leave.  Queued work items
  // still run -- inert through the guards -- so a blocked
  // ApplyControlRecord caller always resolves.  Caller holds mutex_.
  void FailStopLocked(const Status& cause);

  // --- trace buffering (commit-then-record) ---------------------------
  // Send/deliver events are buffered per transaction and recorded only
  // after the commit that makes them durable succeeded; a failed commit
  // discards them.  Otherwise the oracle would count a send the crash
  // (or fail-stop) un-happened, reporting phantom losses.
  void BufferTraceSend(const Message& message);
  void BufferTraceDeliver(const Message& message);
  void FlushTraceLocked();

  // --- helpers ---------------------------------------------------------
  [[nodiscard]] DomainItem* FindItemByDomainId(DomainId id);
  // Wire tag for frames stamped by `domain`'s core (0 for the matrix
  // core, which is never written on the wire).  Caller holds mutex_.
  [[nodiscard]] std::uint8_t CoreTagFor(DomainId domain) const;
  [[nodiscard]] Message MakeMessage(AgentId from, AgentId to,
                                    std::string subject, Bytes payload);

  // Deferred runtime callbacks (retransmit timers, simulated-cost
  // continuations) capture this token; each callback holds the token's
  // mutex for its whole body and bails out when `alive` is false.  The
  // destructor sets `alive` under the same mutex, which both bars
  // future callbacks and waits out any callback currently mid-flight --
  // so chaos tests may destroy a server at any moment, even with
  // timers pending on a threaded runtime.
  struct LifeToken {
    std::mutex mutex;
    bool alive = true;
  };
  std::shared_ptr<LifeToken> life_ = std::make_shared<LifeToken>();

  const domains::Deployment* deployment_;
  ServerId self_;
  net::Endpoint* endpoint_;
  net::Runtime* runtime_;
  Store* store_;
  AgentServerOptions options_;

  mutable std::mutex mutex_;
  bool booted_ = false;
  bool shutdown_ = false;
  // Non-OK once FailStopLocked ran (kFailStop wrapping the store
  // failure).  Deliberately distinct from shutdown_: Shutdown() must
  // still run its receive-handler swap on a halted server, and a halted
  // server still drains its work queue (inertly) for blocked callers.
  Status halt_status_;
  bool fence_active_ = false;
  bool work_running_ = false;
  std::deque<Work> work_queue_;
  std::vector<std::pair<ServerId, Bytes>> pending_frames_;
  bool engine_step_needed_ = false;
  bool engine_step_queued_ = false;

  // Decoded frames awaiting the batched Channel drain.  Frames are
  // parsed on the transport thread that delivered them (HandleFrame),
  // before the server lock: decode is the Channel's largest per-frame
  // constant factor and runs concurrently across peers this way, while
  // the drain under mutex_ only touches already-decoded structs.
  struct DecodedFrame {
    ServerId from;
    FrameType type = FrameType::kData;
    DataFrame data;  // valid iff type == kData
    AckFrame ack;    // valid iff type == kAck
  };
  std::deque<DecodedFrame> inbox_;
  bool inbox_drain_queued_ = false;
  // (peer, accepted ids) staged during the current drain, coalesced
  // into one ack frame per peer after the batch commit.  With
  // ack_coalesce_ns > 0 they may survive several drains until the
  // window timer (or an unblocking grant) flushes them.
  std::vector<std::pair<ServerId, std::vector<MessageId>>> staged_acks_;
  // True while an ack-coalescing window timer is in flight.
  bool ack_flush_armed_ = false;
  // Set by frame processing that changed durable state; tells the
  // batched drain whether the end-of-batch commit is needed at all
  // (a batch of pure duplicates or bad frames commits nothing).
  bool commit_needed_ = false;
  // Trace events of the transaction in flight, recorded on commit
  // success and discarded on fail-stop (see BufferTraceSend).
  std::vector<causality::TraceEvent> pending_trace_;

  std::vector<DomainItem> items_;
  // QueueOUT: FIFO list plus MessageId index for O(1) ack/retransmit
  // lookup (a deque would invalidate iterators on erase).
  std::list<OutEntry> queue_out_;
  std::unordered_map<MessageId, std::list<OutEntry>::iterator>
      queue_out_index_;
  std::deque<InEntry> queue_in_;
  std::unordered_map<std::uint32_t, std::unique_ptr<Agent>> agents_;
  std::uint64_t next_msg_seq_ = 1;
  // Durable boot counter (part of the meta record), bumped and
  // committed by every Boot.  Tags outgoing data frames and ack credit
  // trailers so peers can tell a restarted incarnation of this server
  // from its previous life and renegotiate per-link credit state
  // (src/flow/credits.h).  Monotone >= 1 on a booted server.
  std::uint64_t incarnation_ = 0;
  bool meta_dirty_ = false;
  // Key-suffix / ordering counters for the per-entry schema (volatile;
  // re-derived from the recovered entries on Boot).
  std::uint64_t next_out_enqueue_seq_ = 1;
  std::uint64_t next_in_seq_ = 1;
  std::uint64_t next_hold_seq_ = 1;
  // Store operations staged since the last commit; a transaction that
  // staged nothing skips the (otherwise empty) store commit entirely.
  std::uint64_t txn_ops_staged_ = 0;
  // Bytes committed by the currently running work item (feeds the
  // simulated disk-cost charge).
  std::uint64_t txn_bytes_marker_ = 0;

  // --- parallel engine state ------------------------------------------
  // Non-null iff the parallel pipeline is active (decided at Boot).
  std::unique_ptr<net::Executor> executor_;
  // Reactions dispatched to shards and not yet group-committed; Idle()
  // requires this to reach zero.  Guarded by mutex_.
  std::size_t engine_inflight_ = 0;
  // True while a CommitReactions work item is queued or running, so the
  // commit stage coalesces naturally under load.  Guarded by mutex_.
  bool commit_stage_queued_ = false;
  // Worker -> commit-stage handoff.  Lock order: mutex_ before
  // results_mutex_; workers take results_mutex_ alone and release it
  // before touching mutex_ (via Post).
  mutable std::mutex results_mutex_;
  std::vector<ReactionResult> completed_reactions_;
  // Per-shard utilization counters.  Each entry is written only by the
  // worker that owns that shard and read with relaxed loads by stats()
  // and the adaptive commit sizing -- no lock on the hot path.
  struct WorkerStat {
    std::atomic<std::uint64_t> reactions{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };
  std::unique_ptr<WorkerStat[]> worker_stats_;
  std::size_t worker_stat_count_ = 0;

  // --- flow control state (guarded by mutex_) -------------------------
  std::unordered_map<ServerId, flow::CreditSenderLink> sender_links_;
  std::unordered_map<ServerId, flow::CreditReceiverLink> receiver_links_;
  // Peers with a liveness probe timer in flight.
  std::unordered_set<ServerId> credit_probe_armed_;
  // One forward staged by the DRR scheduler; `seq` is its fwd/ key
  // suffix (and recovery order).
  struct ForwardEntry {
    std::uint64_t seq = 0;
    Message message;
  };
  flow::DrrScheduler<ForwardEntry> forward_stage_;
  bool forward_step_queued_ = false;
  std::uint64_t next_fwd_seq_ = 1;
  // Deferred local sends (ids already assigned; released in order).
  std::deque<Message> wait_queue_;
  bool wait_drain_queued_ = false;
  // Next dlq/ key suffix; seeded from the store at Boot.
  std::uint64_t next_dlq_seq_ = 1;

  ServerStats stats_;
  // Cumulative per-destination origination counters (guarded by
  // mutex_, maintained alongside stats_.messages_sent).
  std::unordered_map<ServerId, std::uint64_t> originated_by_dest_;
};

}  // namespace cmom::mom
