// Agent server: Engine + Channel (Sections 3 and 5).
//
// One AgentServer hosts agents (the Engine side) and moves messages
// (the Channel side).  The Channel owns one DomainItem per domain the
// server belongs to -- a causal router-server has several -- each with
// its own matrix clock and hold-back queue, plus the QueueOUT of
// stamped messages awaiting acknowledgment.  The Engine owns QueueIN
// and runs agent reactions one at a time.
//
// Every protocol step is a transaction against the server's Store:
//
//   send      : assign id, stamp with the link domain's clock, append
//               to QueueOUT, commit, then emit the frame
//   receive   : check the stamp against the domain's clock;
//               deliver -> merge clock, push QueueIN (final dest) or
//                          stamp for the next hop and append QueueOUT
//                          (router), commit, then ACK
//               hold    -> persist in the hold-back queue, commit, ACK
//               dup     -> just ACK
//   reaction  : pop QueueIN, run Agent::React, persist agent state and
//               the stamped sends it produced, commit, emit frames
//
// Unacknowledged QueueOUT entries are retransmitted with their original
// stamp; the receiver's clock check recognizes and drops duplicates, so
// the bus delivers exactly once across frame loss and server crashes.
//
// Processing-cost simulation: with a CostModel configured (simulated
// runs), each transaction charges
//     per_hop_fixed + clock_entries * per_clock_entry
//                   + committed_bytes * per_disk_byte + disk_sync
// of simulated time before its outputs (frames, next transaction)
// become visible, and transactions of one server serialize -- modelling
// the single-threaded Java server of the paper.  Without a CostModel,
// work runs inline at wall-clock speed.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "causality/trace.h"
#include "clocks/causal_clock.h"
#include "clocks/holdback.h"
#include "common/ids.h"
#include "common/status.h"
#include "domains/deployment.h"
#include "mom/agent.h"
#include "mom/message.h"
#include "mom/store.h"
#include "net/cost_model.h"
#include "net/runtime.h"
#include "net/transport.h"

namespace cmom::mom {

struct AgentServerOptions {
  // Non-null enables simulated processing costs (see header comment).
  const net::CostModel* cost_model = nullptr;
  // Non-null records application-level send/deliver events.
  causality::TraceRecorder* trace = nullptr;
  // Delay before an unacknowledged QueueOUT entry is resent.
  std::uint64_t retransmit_timeout_ns = 500ull * 1000 * 1000;
  // Safety valve for runaway retransmission (0 = unlimited).
  std::uint32_t max_retransmit_attempts = 0;
};

struct ServerStats {
  std::uint64_t messages_sent = 0;        // application sends originated
  std::uint64_t messages_delivered = 0;   // delivered to local agents
  std::uint64_t messages_forwarded = 0;   // routed onward (router role)
  std::uint64_t frames_received = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t holdback_peak = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t stamp_bytes_sent = 0;     // wire cost of causal stamps
  std::uint64_t commits = 0;
  // Frames the transport refused (e.g. supervised outbox overflow);
  // each is covered by a later QueueOUT retransmission.
  std::uint64_t transport_send_failures = 0;
};

class AgentServer {
 public:
  // `deployment`, `endpoint`, `runtime` and `store` must outlive the
  // server.  `self` must be one of the deployment's servers and match
  // the endpoint's identity.
  AgentServer(const domains::Deployment& deployment, ServerId self,
              net::Endpoint* endpoint, net::Runtime* runtime, Store* store,
              AgentServerOptions options = {});
  ~AgentServer();

  AgentServer(const AgentServer&) = delete;
  AgentServer& operator=(const AgentServer&) = delete;

  // Registers an agent under a server-local id.  Must happen before
  // Boot(); the same ids must be attached again when rebooting after a
  // crash so persistent state can be restored.
  AgentId AttachAgent(std::uint32_t local_id, std::unique_ptr<Agent> agent);

  // Recovers durable state from the store (first boot initializes it),
  // installs the receive handler and resumes pending work
  // (retransmissions, queued reactions).
  [[nodiscard]] Status Boot();

  // Stops accepting frames and timers.  Pending durable state remains
  // in the store for the next Boot.
  void Shutdown();

  // Crash-test teardown barrier: Shutdown() plus waiting out (and
  // permanently barring) every pending runtime callback.  After Halt
  // returns the server never touches its endpoint again, so a chaos
  // test may destroy the endpoint before the server object --
  // simulating a whole-process kill one subsystem at a time.
  void Halt();

  // Application-level send on behalf of a local agent.  Thread-safe.
  // `from.server` must be this server.
  Result<MessageId> SendMessage(AgentId from, AgentId to, std::string subject,
                                Bytes payload = {});

  [[nodiscard]] ServerId self() const { return self_; }
  [[nodiscard]] ServerStats stats() const;

  // Number of held-back (causally premature) messages over all domains.
  [[nodiscard]] std::size_t holdback_size() const;
  // Unacknowledged outgoing messages.
  [[nodiscard]] std::size_t queue_out_size() const;
  // True when no transaction is running or queued.
  [[nodiscard]] bool Idle() const;

  // Matrix clock of the domain item for deployment domain `index`
  // (tests / introspection).
  [[nodiscard]] const clocks::CausalDomainClock* FindDomainClock(
      std::size_t deployment_domain_index) const;

 private:
  struct HeldFrame {
    DomainServerId src_local;
    DataFrame frame;
  };

  struct DomainItem {
    std::size_t deployment_index = 0;
    DomainId id;
    DomainServerId self_local;
    clocks::CausalDomainClock clock;
    clocks::HoldbackQueue<HeldFrame> holdback;
  };

  struct OutEntry {
    Message message;
    ServerId next_hop;
    DomainId domain;
    clocks::Stamp stamp;
    std::uint32_t attempts = 0;
  };

  // A unit of transactional work.  Returns the number of clock entries
  // it touched; outputs are collected in pending_frames_ /
  // engine_step_needed_ and released once the simulated cost elapsed.
  using Work = std::function<std::size_t()>;

  // --- work serialization -------------------------------------------
  void Post(Work work);
  void PumpLocked();

  // --- channel -------------------------------------------------------
  void HandleFrame(ServerId from, Bytes frame);
  std::size_t ProcessDataFrame(ServerId from, DataFrame frame);
  std::size_t ProcessAck(const AckFrame& ack);
  // Delivers a checked frame: local QueueIN or forward.  Returns clock
  // entries touched.
  std::size_t CommitDelivery(DomainItem& item, DomainServerId src_local,
                             DataFrame&& frame);
  // Re-examines the hold-back queue after a clock change; returns the
  // clock entries touched by the deliveries it unblocked.
  std::size_t DrainHoldback(DomainItem& item);
  // Stamps `message` toward its destination and appends to QueueOUT;
  // returns entries touched.  Emits the data frame.
  std::size_t StampAndEnqueue(Message message);
  void EmitFrame(ServerId to, Bytes bytes);
  void FlushFrames(std::vector<std::pair<ServerId, Bytes>> frames);
  // Schedules the next retransmission check for `id`.  The delay grows
  // exponentially with the attempts already made (capped at 64x the
  // base timeout) so a backlogged peer is probed, not bombarded.
  void ScheduleRetransmit(MessageId id, std::uint32_t attempts_so_far);

  // --- engine ----------------------------------------------------------
  std::size_t EngineStep();
  std::size_t ApplySends(std::vector<Message> sends);

  // --- persistence ----------------------------------------------------
  void PersistMeta();
  void PersistClocks();
  void PersistQueueOut();
  void PersistQueueIn();
  void PersistHoldback();
  void PersistAgent(std::uint32_t local_id);
  [[nodiscard]] Status RecoverLocked();
  void CommitLocked();

  // --- helpers ---------------------------------------------------------
  [[nodiscard]] DomainItem* FindItemByDomainId(DomainId id);
  [[nodiscard]] Message MakeMessage(AgentId from, AgentId to,
                                    std::string subject, Bytes payload);

  // Deferred runtime callbacks (retransmit timers, simulated-cost
  // continuations) capture this token; each callback holds the token's
  // mutex for its whole body and bails out when `alive` is false.  The
  // destructor sets `alive` under the same mutex, which both bars
  // future callbacks and waits out any callback currently mid-flight --
  // so chaos tests may destroy a server at any moment, even with
  // timers pending on a threaded runtime.
  struct LifeToken {
    std::mutex mutex;
    bool alive = true;
  };
  std::shared_ptr<LifeToken> life_ = std::make_shared<LifeToken>();

  const domains::Deployment* deployment_;
  ServerId self_;
  net::Endpoint* endpoint_;
  net::Runtime* runtime_;
  Store* store_;
  AgentServerOptions options_;

  mutable std::mutex mutex_;
  bool booted_ = false;
  bool shutdown_ = false;
  bool work_running_ = false;
  std::deque<Work> work_queue_;
  std::vector<std::pair<ServerId, Bytes>> pending_frames_;
  bool engine_step_needed_ = false;
  bool engine_step_queued_ = false;

  std::vector<DomainItem> items_;
  std::deque<OutEntry> queue_out_;
  std::deque<Message> queue_in_;
  std::unordered_map<std::uint32_t, std::unique_ptr<Agent>> agents_;
  std::uint64_t next_msg_seq_ = 1;
  // Bytes committed by the currently running work item (feeds the
  // simulated disk-cost charge).
  std::uint64_t txn_bytes_marker_ = 0;

  ServerStats stats_;
};

}  // namespace cmom::mom
