// File-backed store: write-ahead log plus snapshot.
//
// Layout inside the store directory:
//   snapshot.log - one committed transaction holding the full state at
//                  the time of the last compaction
//   wal.log      - transactions committed since the snapshot
//
// Each transaction record is  [u32 body_length][u32 crc32][body] where
// the body is a sequence of operations:
//   0x01 put    [varint key_len][key][varint value_len][value]
//   0x02 delete [varint key_len][key]
// A torn tail (truncated record or CRC mismatch) is discarded on load,
// which is exactly the atomicity a crash in mid-commit requires.
// Compaction rewrites snapshot.log.tmp, renames it over snapshot.log
// and truncates the WAL; a crash between those steps is recovered by
// preferring the renamed snapshot.
#pragma once

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "mom/store.h"

namespace cmom::mom {

// How far Commit pushes a transaction toward the disk before returning.
//
//   kNone      fflush only: bytes reach the kernel page cache.  Survives
//              a process crash (the chaos-test fault model) but not a
//              power failure.  Default -- tests and benchmarks measure
//              protocol cost, not device sync latency.
//   kDataSync  fdatasync after the flush: survives power loss.  One
//              sync per Commit, which is why the Engine's group commit
//              matters -- N reactions amortize a single sync.
//
// Tradeoff discussion in DESIGN.md.
enum class SyncMode : std::uint8_t {
  kNone = 0,
  kDataSync = 1,
};

struct FileStoreOptions {
  SyncMode sync_mode = SyncMode::kNone;
};

class FileStore final : public Store {
 public:
  // Opens (creating if needed) the store in `directory`.
  [[nodiscard]] static Result<std::unique_ptr<FileStore>> Open(
      const std::filesystem::path& directory, FileStoreOptions options = {});

  ~FileStore() override;

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  void Put(std::string_view key, Bytes value) override;
  void Delete(std::string_view key) override;
  [[nodiscard]] std::optional<Bytes> Get(std::string_view key) override;
  [[nodiscard]] std::vector<std::string> Keys(std::string_view prefix) override;
  Status Commit() override;
  void Rollback() override;
  Status Checkpoint() override { return Compact(); }
  [[nodiscard]] std::uint64_t last_commit_bytes() const override {
    return cache_.last_commit_bytes();
  }
  [[nodiscard]] std::uint64_t total_bytes_written() const override {
    return cache_.total_bytes_written();
  }

  // Rewrites the snapshot and truncates the WAL.  Called automatically
  // by Commit when the WAL exceeds `compaction_threshold_bytes`.
  Status Compact();

  void set_compaction_threshold(std::uint64_t bytes) {
    compaction_threshold_bytes_ = bytes;
  }

  // fdatasync invocations so far (0 under SyncMode::kNone).
  [[nodiscard]] std::uint64_t sync_calls() const { return sync_calls_; }

  // EWMA over observed fdatasync latencies (alpha = 1/8); 0 under
  // SyncMode::kNone or before the first sync.
  [[nodiscard]] std::uint64_t sync_latency_ns() const override {
    return sync_latency_ewma_ns_;
  }

  // Fault hook: the next WAL append writes at most `bytes` of the
  // record to disk, then fails Unavailable -- an ENOSPC-style short
  // write.  The torn record is discarded by the CRC check on the next
  // load, so the on-disk store stays at its previous committed state.
  // One-shot; cleared once it fires.
  void set_wal_write_limit(std::uint64_t bytes) {
    wal_write_limit_ = bytes;
    wal_write_limit_armed_ = true;
  }

 private:
  FileStore(std::filesystem::path directory, FileStoreOptions options);

  // Replays records from `file` into the cache, stopping at the first
  // torn or corrupt record.  If `valid_bytes` is non-null it receives
  // the byte length of the valid prefix (the offset appends must
  // resume from).
  Status LoadFrom(const std::filesystem::path& file,
                  std::uintmax_t* valid_bytes = nullptr);
  Status AppendTransaction(const Bytes& body);
  // Applies the configured sync mode to `file` (no-op under kNone).
  Status SyncFile(std::FILE* file);

  // Mirror of the operations staged into cache_ since the last Commit,
  // in order; serialized into the WAL transaction body.
  struct StagedOp {
    std::string key;
    std::optional<Bytes> value;  // nullopt = delete
  };
  std::vector<StagedOp> staged_;

  std::filesystem::path directory_;
  FileStoreOptions options_;
  std::uint64_t sync_calls_ = 0;
  std::uint64_t sync_latency_ewma_ns_ = 0;
  std::FILE* wal_ = nullptr;
  std::uint64_t wal_bytes_ = 0;
  std::uint64_t wal_write_limit_ = 0;
  bool wal_write_limit_armed_ = false;
  // Set when an append failed partway; commits are refused until the
  // store is reopened (the CRC scan then discards the torn tail).
  bool wal_poisoned_ = false;
  std::uint64_t compaction_threshold_bytes_ = 4 * 1024 * 1024;
  // In-memory image of committed state; the files are the durable copy.
  InMemoryStore cache_;
};

}  // namespace cmom::mom
