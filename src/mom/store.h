// Persistent store abstraction (the agent server's disk).
//
// AAA agents are persistent and reactions are atomic (Section 3): every
// protocol step -- accepting a message, delivering to an agent,
// stamping an outgoing message -- ends in one atomic commit of all the
// state it changed.  The Store models that disk: writes are staged with
// Put/Delete and applied atomically by Commit.
//
// Two implementations:
//   InMemoryStore - a map plus byte accounting; "disk" for simulated
//                   runs (the cost model charges per committed byte)
//                   and the crash-recovery tests (the store survives
//                   the server object it backs).
//   FileStore     - a real write-ahead log + snapshot on the local
//                   filesystem (file_store.h).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace cmom::mom {

class Store {
 public:
  virtual ~Store() = default;

  // Stages a write; visible to Get immediately (read-your-writes),
  // durable only after Commit.
  virtual void Put(std::string_view key, Bytes value) = 0;
  virtual void Delete(std::string_view key) = 0;

  [[nodiscard]] virtual std::optional<Bytes> Get(std::string_view key) = 0;

  // All keys with the given prefix (staged view), sorted.
  [[nodiscard]] virtual std::vector<std::string> Keys(
      std::string_view prefix) = 0;

  // Atomically applies every staged operation.
  virtual Status Commit() = 0;

  // Drops staged, uncommitted operations (transaction abort).
  virtual void Rollback() = 0;

  // Maintenance hook: folds accumulated history into a compact image
  // (FileStore truncates its write-ahead log).  Called by the control
  // plane after an epoch cutover rewrote a large slice of the keyspace.
  // Default: nothing to fold.
  virtual Status Checkpoint() { return Status::Ok(); }

  // Bytes written by the most recent Commit (keys + values); feeds the
  // simulated disk-cost model and the I/O-volume measurements.
  [[nodiscard]] virtual std::uint64_t last_commit_bytes() const = 0;
  // Total bytes written over the store's lifetime.
  [[nodiscard]] virtual std::uint64_t total_bytes_written() const = 0;
  // Smoothed cost of this store's durability barrier (fdatasync) in
  // nanoseconds; 0 for stores that never block on the device.  The
  // engine's commit stage reads it to size group commits adaptively: a
  // slow device earns bigger batches so the sync amortizes, a fast (or
  // non-syncing) one keeps commits small and latency low.
  [[nodiscard]] virtual std::uint64_t sync_latency_ns() const { return 0; }
};

class InMemoryStore final : public Store {
 public:
  void Put(std::string_view key, Bytes value) override;
  void Delete(std::string_view key) override;
  [[nodiscard]] std::optional<Bytes> Get(std::string_view key) override;
  [[nodiscard]] std::vector<std::string> Keys(std::string_view prefix) override;
  Status Commit() override;
  void Rollback() override;
  [[nodiscard]] std::uint64_t last_commit_bytes() const override {
    return last_commit_bytes_;
  }
  [[nodiscard]] std::uint64_t total_bytes_written() const override {
    return total_bytes_written_;
  }

  [[nodiscard]] std::uint64_t commit_count() const { return commit_count_; }

 private:
  struct StagedOp {
    std::string key;
    std::optional<Bytes> value;  // nullopt = delete
  };

  std::map<std::string, Bytes, std::less<>> committed_;
  std::vector<StagedOp> staged_;
  std::uint64_t last_commit_bytes_ = 0;
  std::uint64_t total_bytes_written_ = 0;
  std::uint64_t commit_count_ = 0;
};

}  // namespace cmom::mom
