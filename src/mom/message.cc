#include "mom/message.h"

#include "common/buffer_pool.h"

namespace cmom::mom {

namespace {

void EncodeAgentId(ByteWriter& out, const AgentId& id) {
  out.WriteU16(id.server.value());
  out.WriteVarU32(id.local);
}

Result<AgentId> DecodeAgentId(ByteReader& in) {
  auto server = in.ReadU16();
  if (!server.ok()) return server.status();
  auto local = in.ReadVarU32();
  if (!local.ok()) return local.status();
  return AgentId{ServerId(server.value()), local.value()};
}

void EncodeMessageId(ByteWriter& out, const MessageId& id) {
  out.WriteU16(id.origin.value());
  out.WriteVarU64(id.seq);
}

Result<MessageId> DecodeMessageId(ByteReader& in) {
  auto origin = in.ReadU16();
  if (!origin.ok()) return origin.status();
  auto seq = in.ReadVarU64();
  if (!seq.ok()) return seq.status();
  return MessageId{ServerId(origin.value()), seq.value()};
}

}  // namespace

void Message::Encode(ByteWriter& out) const {
  EncodeMessageId(out, id);
  EncodeAgentId(out, from);
  EncodeAgentId(out, to);
  out.WriteString(subject);
  out.WriteBytes(payload);
}

Result<Message> Message::Decode(ByteReader& in) {
  auto id = DecodeMessageId(in);
  if (!id.ok()) return id.status();
  auto from = DecodeAgentId(in);
  if (!from.ok()) return from.status();
  auto to = DecodeAgentId(in);
  if (!to.ok()) return to.status();
  auto subject = in.ReadString();
  if (!subject.ok()) return subject.status();
  auto payload = in.ReadBytesPooled();
  if (!payload.ok()) return payload.status();
  Message message;
  message.id = id.value();
  message.from = from.value();
  message.to = to.value();
  message.subject = std::move(subject).value();
  message.payload = std::move(payload).value();
  return message;
}

void DataFrame::SerializeInto(ByteWriter& out) const {
  out.WriteU8(static_cast<std::uint8_t>(FrameType::kData));
  message.Encode(out);
  out.WriteU16(domain.value());
  out.WriteVarU64(epoch);
  stamp.Encode(out);
  // Optional trailers: incarnation (flow restart detection) then the
  // causal-core tag.  0 = absent for both, keeping matrix-core frames
  // byte-identical to the pre-flow/pre-core layout; a non-zero core tag
  // needs the incarnation slot filled so decode stays positional.
  if (incarnation != 0 || core_tag != 0) out.WriteVarU64(incarnation);
  if (core_tag != 0) out.WriteVarU64(core_tag);
}

Bytes DataFrame::Serialize() const {
  // Size hint: frame type + domain + ids/subject/payload + stamp, with
  // a small slop for the varint headers; the buffer comes from the
  // calling thread's pool, so a steady-state emit path allocates
  // nothing per frame.
  ByteWriter out = PooledWriter(16 + message.subject.size() +
                                message.payload.size() + stamp.EncodedSize());
  SerializeInto(out);
  return std::move(out).Take();
}

std::size_t DataFrame::SerializedSize() const {
  Bytes encoded = Serialize();
  const std::size_t size = encoded.size();
  BufferPool::Release(std::move(encoded));
  return size;
}

Result<DataFrame> DataFrame::Deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  auto type = in.ReadU8();
  if (!type.ok()) return type.status();
  if (type.value() != static_cast<std::uint8_t>(FrameType::kData)) {
    return Status::DataLoss("not a data frame");
  }
  auto message = Message::Decode(in);
  if (!message.ok()) return message.status();
  auto domain = in.ReadU16();
  if (!domain.ok()) return domain.status();
  auto epoch = in.ReadVarU64();
  if (!epoch.ok()) return epoch.status();
  auto stamp = clocks::Stamp::Decode(in);
  if (!stamp.ok()) return stamp.status();
  DataFrame frame;
  frame.message = std::move(message).value();
  frame.domain = DomainId(domain.value());
  frame.stamp = std::move(stamp).value();
  frame.epoch = epoch.value();
  // Pre-flow frames end at the stamp; the first trailer is the sender's
  // boot incarnation, the second (pre-core frames lack it) the causal
  // core tag.
  if (!in.exhausted()) {
    auto incarnation = in.ReadVarU64();
    if (!incarnation.ok()) return incarnation.status();
    frame.incarnation = incarnation.value();
  }
  if (!in.exhausted()) {
    auto tag = in.ReadVarU64();
    if (!tag.ok()) return tag.status();
    if (tag.value() > 0xFF) return Status::DataLoss("bad causal core tag");
    frame.core_tag = static_cast<std::uint8_t>(tag.value());
  }
  return frame;
}

Bytes AckFrame::Serialize() const {
  ByteWriter out = PooledWriter(16 + 10 * messages.size());
  out.WriteU8(static_cast<std::uint8_t>(FrameType::kAck));
  out.WriteVarU32(static_cast<std::uint32_t>(messages.size()));
  for (const MessageId& id : messages) EncodeMessageId(out, id);
  // Trailing flow-control section, gated on a flags byte: bit 0 the
  // cumulative grant, bit 1 the restart-renegotiation session/echo pair.
  out.WriteU8(static_cast<std::uint8_t>((has_credit ? 1 : 0) |
                                        (has_session ? 2 : 0)));
  if (has_credit) out.WriteVarU64(credit);
  if (has_session) {
    out.WriteVarU64(session);
    out.WriteVarU64(echo);
    out.WriteVarU64(accepted);
  }
  return std::move(out).Take();
}

Result<FrameType> PeekFrameType(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return Status::DataLoss("empty frame");
  const std::uint8_t type = bytes[0];
  if (type != static_cast<std::uint8_t>(FrameType::kData) &&
      type != static_cast<std::uint8_t>(FrameType::kAck)) {
    return Status::DataLoss("unknown frame type");
  }
  return static_cast<FrameType>(type);
}

Result<AckFrame> DeserializeAck(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  auto type = in.ReadU8();
  if (!type.ok()) return type.status();
  if (type.value() != static_cast<std::uint8_t>(FrameType::kAck)) {
    return Status::DataLoss("not an ack frame");
  }
  auto count = in.ReadVarU32();
  if (!count.ok()) return count.status();
  // Each id costs at least 3 bytes; a count beyond the remaining bytes
  // is corruption, not a huge allocation request.
  if (count.value() > in.remaining()) {
    return Status::DataLoss("ack count exceeds frame size");
  }
  AckFrame ack;
  ack.messages.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto id = DecodeMessageId(in);
    if (!id.ok()) return id.status();
    ack.messages.push_back(id.value());
  }
  // Optional trailing flow-control section: frames from pre-flow
  // encoders end here, so a missing flags byte just means "no credit".
  if (!in.exhausted()) {
    auto flags = in.ReadU8();
    if (!flags.ok()) return flags.status();
    if ((flags.value() & 1) != 0) {
      auto credit = in.ReadVarU64();
      if (!credit.ok()) return credit.status();
      ack.has_credit = true;
      ack.credit = credit.value();
    }
    if ((flags.value() & 2) != 0) {
      auto session = in.ReadVarU64();
      if (!session.ok()) return session.status();
      auto echo = in.ReadVarU64();
      if (!echo.ok()) return echo.status();
      auto accepted = in.ReadVarU64();
      if (!accepted.ok()) return accepted.status();
      ack.has_session = true;
      ack.session = session.value();
      ack.echo = echo.value();
      ack.accepted = accepted.value();
    }
  }
  return ack;
}

}  // namespace cmom::mom
