// In-process pool of gateway clients: N lightweight sessions speaking
// the gateway wire protocol over their own epoll reactor.
//
// This is the load-generation half of the gateway tier: the net_scale
// bench forks a child process that drives >=10k sessions through one
// GatewayClientPool, and the churn/fault tests reuse it for smaller
// counts.  Connections ramp in paced batches (connect_batch at a time)
// so a 10k ramp doesn't overrun the gateway's listen backlog with one
// giant SYN burst; each session performs the kHello/kWelcome handshake
// as soon as its connect completes, and the next batch entry launches
// whenever a session reaches a terminal handshake state.
//
// Threading: Send() is safe from any thread (frames queue onto the
// session's outbound buffer; the owning reactor shard flushes with the
// same partial-write continuation as the server side).  The delivery
// handler runs on reactor shard threads -- keep it cheap and do not
// call back into the pool from it except Send().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "net/reactor.h"

namespace cmom::mom {

struct GatewayClientOptions {
  std::uint16_t port = 0;       // gateway listen port (loopback)
  std::size_t sessions = 1;     // pool size
  std::uint32_t first_agent = 1;  // session i binds first_agent + i
  std::size_t reactor_threads = 2;
  std::size_t connect_batch = 256;  // concurrent connects in the ramp
  std::size_t session_outbox_max_bytes = 1ull << 20;
  bool tcp_nodelay = true;
  int so_rcvbuf = 0;
  int so_sndbuf = 0;
};

struct GatewayClientStats {
  std::uint64_t bound = 0;  // gauge: sessions currently bound
  std::uint64_t connect_failures = 0;
  std::uint64_t auth_rejects = 0;
  std::uint64_t send_rejects = 0;   // kSendReject frames received
  std::uint64_t protocol_errors = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class GatewayClientPool {
 public:
  // session, src_server, src_local, subject, payload, payload_size.
  // Runs on a reactor shard thread; the payload pointer is only valid
  // for the duration of the call.
  using DeliveryFn =
      std::function<void(std::size_t, std::uint16_t, std::uint32_t,
                         std::string_view, const std::uint8_t*, std::size_t)>;

  explicit GatewayClientPool(GatewayClientOptions options);
  ~GatewayClientPool();

  GatewayClientPool(const GatewayClientPool&) = delete;
  GatewayClientPool& operator=(const GatewayClientPool&) = delete;

  // Must be set before Start() if deliveries matter.
  void set_delivery_handler(DeliveryFn fn) { on_delivery_ = std::move(fn); }

  // Begins the paced connect ramp.
  void Start();

  // Blocks until every session is bound, a session fails terminally,
  // or the timeout passes.  True iff all sessions are bound.
  [[nodiscard]] bool WaitAllBound(std::uint64_t timeout_ns);

  // Queues one kClientSend on `session`.  False if the session is not
  // bound or its outbound buffer is full (nothing queued).
  bool Send(std::size_t session, std::uint16_t dest_server,
            std::uint32_t dest_local, std::string_view subject,
            const void* payload, std::size_t payload_size);

  // Closes one session's connection (churn).  Reconnect(i) dials and
  // re-authenticates it; the gateway frees the binding only when it
  // observes the close, so callers should expect a short window where
  // the rebind is rejected and retry.
  void Close(std::size_t session);
  void Reconnect(std::size_t session);

  // Closes everything; blocks until no pool callback can run again.
  void Stop();

  [[nodiscard]] GatewayClientStats stats() const;

 private:
  struct Session;

  void StartConnect(const std::shared_ptr<Session>& session);
  void MaybeStartNext();
  void OnSessionEvent(const std::shared_ptr<Session>& session,
                      std::uint32_t events);
  void ParseSession(const std::shared_ptr<Session>& session);
  bool HandleFrame(const std::shared_ptr<Session>& session,
                   const std::uint8_t* frame, std::size_t size);
  void QueueFrame(const std::shared_ptr<Session>& session, Bytes frame);
  void FlushSession(const std::shared_ptr<Session>& session);
  void CloseSession(const std::shared_ptr<Session>& session, bool failed);

  const GatewayClientOptions options_;
  std::shared_ptr<net::Reactor> reactor_;
  DeliveryFn on_delivery_;

  mutable std::mutex mutex_;
  std::condition_variable bound_cv_;
  bool started_ = false;
  bool stopping_ = false;
  std::size_t next_start_ = 0;  // ramp cursor
  std::vector<std::shared_ptr<Session>> sessions_;
  GatewayClientStats stats_;
};

}  // namespace cmom::mom
