// Vector-clock causal broadcast -- the related-work baseline.
//
// The solutions the paper contrasts with ([13] hierarchical clusters,
// [17] the Daisy architecture) are "based on vector clocks, which
// require causal broadcast and therefore do not scale well" (Section
// 2).  This is that classical protocol (ISIS CBCAST-style): every
// message goes to the whole group carrying the sender's vector clock;
// receiver q delivers a message from j stamped V iff
//     V[j] == local[j] + 1   and   V[k] <= local[k]  for all k != j,
// holding it back otherwise.
//
// It exists here as an honest baseline for the ablation bench: the
// per-message wire cost is (group-1) frames of O(group) stamp each --
// versus the domain approach's handful of unicast hops with O(1)
// Updates stamps -- which is exactly why the paper goes the
// matrix-clock + domains route for point-to-point MOM traffic.
#pragma once

#include <cstddef>

#include "clocks/causal_clock.h"  // CheckResult
#include "clocks/vector_clock.h"

namespace cmom::clocks {

class CbcastNode {
 public:
  CbcastNode() = default;
  CbcastNode(std::size_t self, std::size_t group_size)
      : self_(self), clock_(group_size) {}

  [[nodiscard]] std::size_t self() const { return self_; }
  [[nodiscard]] std::size_t group_size() const { return clock_.size(); }

  // Starts a broadcast: advances the own component and returns the
  // stamp to attach to every copy.
  [[nodiscard]] VectorClock PrepareBroadcast();

  // Classifies an incoming copy from `sender` stamped `stamp`.
  [[nodiscard]] CheckResult Check(std::size_t sender,
                                  const VectorClock& stamp) const;

  // Merges a deliverable stamp (call only after Check == kDeliver).
  void Commit(std::size_t sender, const VectorClock& stamp);

  [[nodiscard]] const VectorClock& clock() const { return clock_; }

 private:
  std::size_t self_ = 0;
  VectorClock clock_;
};

}  // namespace cmom::clocks
