// The Appendix-A "Updates" optimized stamping algorithm.
//
// Instead of piggybacking the full matrix on every message, the sender
// tracks, per matrix entry, the local state counter at its last
// modification (Mat[k][l].state) and, per destination, the state counter
// at the last send to that destination (Node[j].state).  A message to j
// then carries only the entries modified since the last send to j --
// O(changes) in the common case, O(s^2) only in the worst case.
//
// We also implement the last-writer refinement visible in the appendix
// (the "Mat[k,l].node" field): an entry whose current value was learned
// *from* j itself is never echoed back to j, since j's own clock already
// dominated it when j sent it.
//
// Correctness of delta stamps rests on per-link FIFO delivery, which the
// matrix-clock delivery condition itself enforces (message r+1 from i to
// j cannot be delivered before message r).  See causal_clock.h.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "clocks/matrix_clock.h"
#include "clocks/stamp.h"
#include "common/ids.h"

namespace cmom::clocks {

class UpdatesTracker {
 public:
  UpdatesTracker() = default;
  // `size` is the domain size (matrix dimension).
  explicit UpdatesTracker(std::size_t size);

  // Records that entry (row, col) changed now, learned from `writer`
  // (nullopt when the owner itself caused the change, e.g. its own
  // send counter).
  void NoteChange(DomainServerId row, DomainServerId col,
                  std::optional<DomainServerId> writer);

  // Builds the delta stamp for a message to `dest`: every entry of
  // `matrix` changed since the last send to `dest`, minus entries last
  // learned from `dest` itself.  Advances Node[dest].state.
  [[nodiscard]] Stamp CollectFor(DomainServerId dest,
                                 const MatrixClock& matrix);

  // Rebuilds the tracker over a new domain membership (epoch cutover),
  // mirroring MatrixClock::Remap.  Entries and per-destination send
  // state follow their mapped coordinates; everything touching a
  // departed member resets conservatively (state 0 / self-written), so
  // the next delta stamp to any peer over-approximates rather than
  // omits.  The global state counter is preserved.
  [[nodiscard]] UpdatesTracker Remap(
      std::size_t new_size,
      std::span<const std::optional<DomainServerId>> old_of_new) const;

  // State persistence (the tracker is part of the channel's durable
  // image: losing it after a crash would only cost bandwidth, not
  // correctness, but we persist it to keep recovery deterministic).
  void Encode(ByteWriter& out) const;
  [[nodiscard]] static Result<UpdatesTracker> Decode(ByteReader& in);

  [[nodiscard]] bool operator==(const UpdatesTracker&) const = default;

 private:
  struct CellMeta {
    std::uint64_t state = 0;  // Mat[k][l].state: state counter at last change
    std::uint32_t writer = kSelfWriter;  // Mat[k][l].node

    friend bool operator==(const CellMeta&, const CellMeta&) = default;
  };
  static constexpr std::uint32_t kSelfWriter = 0xFFFFFFFFu;

  [[nodiscard]] std::size_t index(DomainServerId row,
                                  DomainServerId col) const {
    return static_cast<std::size_t>(row.value()) * size_ + col.value();
  }

  std::size_t size_ = 0;
  std::uint64_t state_ = 0;                // the global State counter
  std::vector<CellMeta> cells_;            // per-entry metadata
  std::vector<std::uint64_t> node_state_;  // Node[j].state per destination
};

}  // namespace cmom::clocks
