// Pluggable causal-delivery cores.
//
// The paper's per-domain matrix clock is one point in a design space:
// Almeida's hybrid buffering (constant-size timestamps, receiver-side
// hold-back keyed on per-link FIFO plus causal barriers) and the
// Drummond-Barbosa matrix-clock complexity reduction attack the O(s^2)
// timestamp cost that caps domain size.  CausalCore factors the causal
// layer behind a strategy interface so the same middleware, benches and
// chaos harness can compare all three.
//
// Every core implements *exact* per-domain causal delivery: a message
// from src to self is deliverable iff every message destined to self in
// its causal past has been delivered.  Because the condition is exact,
// all cores make identical delivery decisions on identical arrival
// sequences -- the cross-core equivalence property the test suite pins.
// What differs is the representation cost:
//
//   kMatrix   O(s^2) state, stamps O(s^2) full / O(delta) in Updates
//             mode.  Wraps the existing CausalDomainClock bit-exactly.
//   kReduced  O(s^2) state, stamps O(s + delta): the Drummond-Barbosa
//             observation that the delivery condition only reads the
//             destination column, so each stamp carries that column in
//             full plus the Appendix-A delta for transitive knowledge.
//             Never ships the s^2 matrix.
//   kHybrid   O(s^2) counters of local state (the heard matrix), stamps
//             O(inflight): per-link FIFO sequence numbers plus an
//             explicit causal-barrier set (the possibly-undelivered
//             messages the sender knows of), pruned by transitively
//             gossiped delivered counts.  Stamp size is independent of
//             s at fixed in-flight load.
//
// Wire stamps reuse the Stamp (row, col, value) triple container so the
// existing frame codec carries any core's timestamp unchanged; frames
// additionally carry a core tag (see mom/message.h) so a receiver can
// fence frames stamped by a different core.  Durable state begins with
// a u16: the legacy matrix image starts with the self id (< 0xFFFF),
// new cores write the 0xFFFF sentinel, a kind byte, then a per-kind
// payload -- so pre-core stores load unchanged and old binaries reject
// new records cleanly (the kind byte lands in the stamp-mode slot).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "clocks/causal_clock.h"
#include "clocks/stamp.h"
#include "common/bytes.h"
#include "common/ids.h"
#include "common/status.h"

namespace cmom::clocks {

enum class CausalCoreKind : std::uint8_t {
  kMatrix = 0,  // the paper's baseline; wire tag 0 is never sent
  kHybrid = 1,
  kReduced = 2,
};

// Human-readable name ("matrix" / "hybrid" / "reduced"), as written in
// config files and printed by momtool.
[[nodiscard]] std::string_view CausalCoreKindName(CausalCoreKind kind);
[[nodiscard]] std::optional<CausalCoreKind> ParseCausalCoreKind(
    std::string_view name);

// Per-server steady-state stamp cost model used by the momtool topo
// lint and the splitter scoring: O(s^2) matrix, O(s) reduced, O(1)
// hybrid.  Returned in "cells" (stamp entries), comparable across
// domains the way the paper's sum-of-s^2 figure is.
[[nodiscard]] std::size_t CausalCoreStampCost(CausalCoreKind kind,
                                              std::size_t domain_size);

class CausalCore {
 public:
  virtual ~CausalCore() = default;

  [[nodiscard]] virtual CausalCoreKind kind() const = 0;
  [[nodiscard]] virtual DomainServerId self() const = 0;
  [[nodiscard]] virtual std::size_t domain_size() const = 0;

  // Sender side: accounts for one message self -> dest and returns the
  // stamp to piggyback on it.
  [[nodiscard]] virtual Stamp PrepareSend(DomainServerId dest) = 0;

  // Batched sender side: exactly the stamps `count` sequential
  // PrepareSend calls would produce.  Cores override when they can do
  // better than the default loop (the matrix core's one-pass snapshot).
  virtual void PrepareSendBatch(DomainServerId dest, std::size_t count,
                                std::vector<Stamp>& out);

  // Receiver side, step 1: classify an incoming message from `src`
  // stamped `stamp` without changing any state.
  [[nodiscard]] virtual CheckResult CheckReceive(DomainServerId src,
                                                const Stamp& stamp) const = 0;

  // Receiver side, step 2: merge the stamp into the local state.  Must
  // only be called after CheckReceive() returned kDeliver.
  virtual void OnDeliver(DomainServerId src, const Stamp& stamp) = 0;

  // Rebuilds the core over a new domain membership (epoch cutover).
  // Only correct on a quiesced domain; the kind is preserved.
  [[nodiscard]] virtual std::unique_ptr<CausalCore> Remap(
      DomainServerId new_self, std::size_t new_size,
      std::span<const std::optional<DomainServerId>> old_of_new) const = 0;

  // Durable image.  The matrix core writes the legacy
  // CausalDomainClock::EncodeState bytes unchanged; other cores write
  // the sentinel-tagged format described above.  Decode with
  // DecodeCausalCoreState.
  virtual void EncodeState(ByteWriter& out) const = 0;

  // Mutation counter (dirty-tracking hook for incremental persistence);
  // transient, restarts at 0 after decode/Remap.
  [[nodiscard]] virtual std::uint64_t version() const = 0;

  // Protocol-state equality across cores of the same kind, ignoring
  // transient bookkeeping (version).  Used by recovery tests.
  [[nodiscard]] virtual bool Equals(const CausalCore& other) const = 0;

  // Non-null only for the matrix core: the wrapped CausalDomainClock.
  // Lets existing tests and debug tooling inspect the matrix directly.
  [[nodiscard]] virtual const CausalDomainClock* AsMatrix() const {
    return nullptr;
  }
};

// (1) The existing CausalDomainClock (both StampMode::kFullMatrix and
// the Appendix-A kUpdates deltas) behind the interface.  Stamps and
// durable images are byte-identical to the pre-core code.
class MatrixClockCore final : public CausalCore {
 public:
  MatrixClockCore(DomainServerId self, std::size_t domain_size,
                  StampMode mode)
      : clock_(self, domain_size, mode) {}
  explicit MatrixClockCore(CausalDomainClock clock)
      : clock_(std::move(clock)) {}

  [[nodiscard]] CausalCoreKind kind() const override {
    return CausalCoreKind::kMatrix;
  }
  [[nodiscard]] DomainServerId self() const override { return clock_.self(); }
  [[nodiscard]] std::size_t domain_size() const override {
    return clock_.domain_size();
  }
  [[nodiscard]] Stamp PrepareSend(DomainServerId dest) override {
    return clock_.PrepareSend(dest);
  }
  void PrepareSendBatch(DomainServerId dest, std::size_t count,
                        std::vector<Stamp>& out) override {
    clock_.PrepareSendBatch(dest, count, out);
  }
  [[nodiscard]] CheckResult CheckReceive(DomainServerId src,
                                         const Stamp& stamp) const override {
    return clock_.Check(src, stamp);
  }
  void OnDeliver(DomainServerId src, const Stamp& stamp) override {
    clock_.Commit(src, stamp);
  }
  [[nodiscard]] std::unique_ptr<CausalCore> Remap(
      DomainServerId new_self, std::size_t new_size,
      std::span<const std::optional<DomainServerId>> old_of_new)
      const override {
    return std::make_unique<MatrixClockCore>(
        clock_.Remap(new_self, new_size, old_of_new));
  }
  void EncodeState(ByteWriter& out) const override {
    clock_.EncodeState(out);
  }
  [[nodiscard]] std::uint64_t version() const override {
    return clock_.version();
  }
  [[nodiscard]] bool Equals(const CausalCore& other) const override;
  [[nodiscard]] const CausalDomainClock* AsMatrix() const override {
    return &clock_;
  }

 private:
  CausalDomainClock clock_;
};

// (3, listed second because it shares the matrix representation) The
// Drummond-Barbosa complexity reduction: keep the full matrix locally
// but never ship it.  Each stamp carries the complete destination
// column (everything the delivery condition reads, so the check is
// self-contained) plus the Appendix-A delta of entries changed since
// the last send to that destination (so transitive knowledge still
// propagates and other columns stay warm).  O(s + delta) per message.
class ReducedMatrixCore final : public CausalCore {
 public:
  ReducedMatrixCore(DomainServerId self, std::size_t domain_size);

  [[nodiscard]] CausalCoreKind kind() const override {
    return CausalCoreKind::kReduced;
  }
  [[nodiscard]] DomainServerId self() const override { return self_; }
  [[nodiscard]] std::size_t domain_size() const override {
    return matrix_.size();
  }
  [[nodiscard]] Stamp PrepareSend(DomainServerId dest) override;
  [[nodiscard]] CheckResult CheckReceive(DomainServerId src,
                                         const Stamp& stamp) const override;
  void OnDeliver(DomainServerId src, const Stamp& stamp) override;
  [[nodiscard]] std::unique_ptr<CausalCore> Remap(
      DomainServerId new_self, std::size_t new_size,
      std::span<const std::optional<DomainServerId>> old_of_new)
      const override;
  void EncodeState(ByteWriter& out) const override;
  [[nodiscard]] std::uint64_t version() const override { return version_; }
  [[nodiscard]] bool Equals(const CausalCore& other) const override;

  [[nodiscard]] static Result<std::unique_ptr<CausalCore>> DecodeBody(
      ByteReader& in);

 private:
  ReducedMatrixCore() = default;

  DomainServerId self_;
  MatrixClock matrix_;
  UpdatesTracker tracker_;
  std::uint64_t version_ = 0;
};

// (2) Almeida-style hybrid buffering.  No matrix at all: per-link FIFO
// sequence numbers order each link, and each message carries the
// sender's *causal barrier set* -- every (origin, dest, seq) triple the
// sender knows of that may still be undelivered.  The receiver holds a
// message back until its own link FIFO position is next AND every
// barrier destined to it is satisfied.  Delivered counts travel the
// other way as gossip deltas: a node ships every delivered count it
// learned (its own deliveries AND counts heard third-hand) that changed
// since its last send to that destination, so pruning information
// propagates transitively exactly as fast as barriers do and the
// barrier set tracks actual in-flight, independent of domain size.
//
// Stamp layout (reusing StampEntry triples; the 0x8000 row flag marks
// gossip, so domains are capped at 0x8000 members):
//   entries[0]            (self, dest, seq)          link FIFO header
//   barrier entries       (origin, dest, seq)        possibly undelivered
//   heard gossip          (origin|0x8000, dest, n)   n messages of the
//                                                    origin->dest link
//                                                    are delivered
class HybridBufferingCore final : public CausalCore {
 public:
  HybridBufferingCore(DomainServerId self, std::size_t domain_size);

  // Row flag marking a heard-delivered-count gossip entry.
  static constexpr std::uint16_t kHeardFlag = 0x8000;

  [[nodiscard]] CausalCoreKind kind() const override {
    return CausalCoreKind::kHybrid;
  }
  [[nodiscard]] DomainServerId self() const override { return self_; }
  [[nodiscard]] std::size_t domain_size() const override { return size_; }
  [[nodiscard]] Stamp PrepareSend(DomainServerId dest) override;
  [[nodiscard]] CheckResult CheckReceive(DomainServerId src,
                                         const Stamp& stamp) const override;
  void OnDeliver(DomainServerId src, const Stamp& stamp) override;
  [[nodiscard]] std::unique_ptr<CausalCore> Remap(
      DomainServerId new_self, std::size_t new_size,
      std::span<const std::optional<DomainServerId>> old_of_new)
      const override;
  void EncodeState(ByteWriter& out) const override;
  [[nodiscard]] std::uint64_t version() const override { return version_; }
  [[nodiscard]] bool Equals(const CausalCore& other) const override;

  // Current causal-barrier set size (observability / leak tests).
  [[nodiscard]] std::size_t barrier_count() const { return barriers_.size(); }

  [[nodiscard]] static Result<std::unique_ptr<CausalCore>> DecodeBody(
      ByteReader& in);

 private:
  HybridBufferingCore() = default;

  [[nodiscard]] std::size_t pair_index(DomainServerId dest,
                                       DomainServerId origin) const {
    return static_cast<std::size_t>(dest.value()) * size_ + origin.value();
  }

  DomainServerId self_;
  std::size_t size_ = 0;
  // Per-link FIFO counters: sent_[d] = messages sent self -> d,
  // delivered_[o] = messages delivered o -> self.
  std::vector<std::uint64_t> sent_;
  std::vector<std::uint64_t> delivered_;
  // Causal barriers: (origin, dest) -> highest possibly-undelivered
  // seq on that link (FIFO makes one entry per link sufficient).
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::uint64_t> barriers_;
  // heard_[pair_index(dest, origin)]: highest delivered count of the
  // origin->dest link this node has heard of (dest != self; the
  // delivered_ vector is authoritative for self), for barrier pruning
  // and onward gossip.
  std::vector<std::uint64_t> heard_;
  // Gossip dirty tracking (the Appendix-A idea applied to delivered
  // counts): ship a count to d only when it changed since the last
  // send to d.
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> delivered_tick_;
  std::vector<std::uint64_t> sent_tick_;
  std::vector<std::uint64_t> heard_tick_;
  std::uint64_t version_ = 0;
};

// Factory for a fresh core.  `mode` only affects the matrix core (full
// vs Appendix-A delta stamps); other cores ignore it.
[[nodiscard]] std::unique_ptr<CausalCore> MakeCausalCore(
    CausalCoreKind kind, DomainServerId self, std::size_t domain_size,
    StampMode mode);

// Decodes a durable core image in either format: legacy matrix records
// (leading u16 self id) and sentinel-tagged records (0xFFFF, kind,
// payload).  The inverse of CausalCore::EncodeState for every core.
[[nodiscard]] Result<std::unique_ptr<CausalCore>> DecodeCausalCoreState(
    ByteReader& in);

}  // namespace cmom::clocks
