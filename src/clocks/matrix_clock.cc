#include "clocks/matrix_clock.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace cmom::clocks {

void MatrixClock::MergeFrom(const MatrixClock& other) {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] = std::max(cells_[i], other.cells_[i]);
  }
}

bool MatrixClock::DominatedBy(const MatrixClock& other) const {
  assert(size_ == other.size_);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i] > other.cells_[i]) return false;
  }
  return true;
}

std::uint64_t MatrixClock::Total() const {
  return std::accumulate(cells_.begin(), cells_.end(), std::uint64_t{0});
}

MatrixClock MatrixClock::Remap(
    std::size_t new_size,
    std::span<const std::optional<DomainServerId>> old_of_new) const {
  assert(old_of_new.size() == new_size);
  MatrixClock out(new_size);
  for (std::size_t i = 0; i < new_size; ++i) {
    if (!old_of_new[i]) continue;
    assert(old_of_new[i]->value() < size_);
    for (std::size_t j = 0; j < new_size; ++j) {
      if (!old_of_new[j]) continue;
      out.cells_[i * new_size + j] =
          cells_[static_cast<std::size_t>(old_of_new[i]->value()) * size_ +
                 old_of_new[j]->value()];
    }
  }
  return out;
}

void MatrixClock::Encode(ByteWriter& out) const {
  out.WriteVarU64(size_);
  for (std::uint64_t cell : cells_) out.WriteVarU64(cell);
}

Result<MatrixClock> MatrixClock::Decode(ByteReader& in) {
  auto size = in.ReadVarU64();
  if (!size.ok()) return size.status();
  // size^2 cells of >= 1 byte each must fit in the remaining input;
  // reject corrupt sizes before allocating from them.
  if (size.value() > 0xFFFF ||
      size.value() * size.value() > in.remaining()) {
    return Status::DataLoss("matrix size exceeds input");
  }
  MatrixClock clock(static_cast<std::size_t>(size.value()));
  for (std::size_t i = 0; i < clock.cells_.size(); ++i) {
    auto cell = in.ReadVarU64();
    if (!cell.ok()) return cell.status();
    clock.cells_[i] = cell.value();
  }
  return clock;
}

}  // namespace cmom::clocks
