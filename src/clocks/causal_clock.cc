#include "clocks/causal_clock.h"

#include <cassert>

namespace cmom::clocks {

CausalDomainClock::CausalDomainClock(DomainServerId self,
                                     std::size_t domain_size, StampMode mode)
    : self_(self), mode_(mode), matrix_(domain_size),
      tracker_(domain_size) {
  assert(self.value() < domain_size);
}

Stamp CausalDomainClock::PrepareSend(DomainServerId dest) {
  assert(dest.value() < matrix_.size());
  matrix_.Increment(self_, dest);
  ++version_;
  tracker_.NoteChange(self_, dest, std::nullopt);
  if (mode_ == StampMode::kUpdates) {
    return tracker_.CollectFor(dest, matrix_);
  }
  Stamp stamp;
  stamp.entries.reserve(matrix_.size() * matrix_.size());
  for (std::uint16_t row = 0; row < matrix_.size(); ++row) {
    for (std::uint16_t col = 0; col < matrix_.size(); ++col) {
      stamp.entries.push_back(StampEntry{
          DomainServerId(row), DomainServerId(col),
          matrix_.at(DomainServerId(row), DomainServerId(col))});
    }
  }
  return stamp;
}

void CausalDomainClock::PrepareSendBatch(DomainServerId dest,
                                         std::size_t count,
                                         std::vector<Stamp>& out) {
  if (count == 0) return;
  assert(dest.value() < matrix_.size());
  ++version_;
  out.reserve(out.size() + count);
  if (mode_ == StampMode::kUpdates) {
    for (std::size_t i = 0; i < count; ++i) {
      matrix_.Increment(self_, dest);
      tracker_.NoteChange(self_, dest, std::nullopt);
      // The first CollectFor drains everything pending toward `dest`;
      // each later stamp carries only its own send counter.
      out.push_back(tracker_.CollectFor(dest, matrix_));
    }
    return;
  }
  // Full-matrix mode: snapshot the matrix once after the first
  // increment, then patch the single (self, dest) cell per message.
  matrix_.Increment(self_, dest);
  tracker_.NoteChange(self_, dest, std::nullopt);
  Stamp base;
  base.entries.reserve(matrix_.size() * matrix_.size());
  for (std::uint16_t row = 0; row < matrix_.size(); ++row) {
    for (std::uint16_t col = 0; col < matrix_.size(); ++col) {
      base.entries.push_back(StampEntry{
          DomainServerId(row), DomainServerId(col),
          matrix_.at(DomainServerId(row), DomainServerId(col))});
    }
  }
  const std::size_t send_cell =
      self_.value() * matrix_.size() + dest.value();
  out.push_back(base);
  for (std::size_t i = 1; i < count; ++i) {
    matrix_.Increment(self_, dest);
    tracker_.NoteChange(self_, dest, std::nullopt);
    base.entries[send_cell].value = matrix_.at(self_, dest);
    out.push_back(base);
  }
}

CheckResult CausalDomainClock::Check(DomainServerId src,
                                     const Stamp& stamp) const {
  assert(src.value() < matrix_.size());
  const StampEntry* own = stamp.Find(src, self_);
  // PrepareSend always bumps M[src][dest] last, so the entry is present
  // in both full and delta stamps; a stamp without it is corrupt.
  assert(own != nullptr && "stamp lacks its own send counter");
  const std::uint64_t delivered = matrix_.at(src, self_);
  if (own->value <= delivered) return CheckResult::kDuplicate;
  if (own->value > delivered + 1) return CheckResult::kHold;  // FIFO gap
  for (const StampEntry& e : stamp.entries) {
    if (e.col != self_ || e.row == src) continue;
    if (e.value > matrix_.at(e.row, e.col)) return CheckResult::kHold;
  }
  return CheckResult::kDeliver;
}

void CausalDomainClock::Commit(DomainServerId src, const Stamp& stamp) {
  bool changed = false;
  for (const StampEntry& e : stamp.entries) {
    if (e.value > matrix_.at(e.row, e.col)) {
      matrix_.set(e.row, e.col, e.value);
      tracker_.NoteChange(e.row, e.col, src);
      changed = true;
    }
  }
  if (changed) ++version_;
}

CausalDomainClock CausalDomainClock::Remap(
    DomainServerId new_self, std::size_t new_size,
    std::span<const std::optional<DomainServerId>> old_of_new) const {
  assert(new_self.value() < new_size);
  CausalDomainClock out;
  out.self_ = new_self;
  out.mode_ = mode_;
  out.matrix_ = matrix_.Remap(new_size, old_of_new);
  out.tracker_ = tracker_.Remap(new_size, old_of_new);
  return out;
}

void CausalDomainClock::EncodeState(ByteWriter& out) const {
  out.WriteU16(self_.value());
  out.WriteU8(static_cast<std::uint8_t>(mode_));
  matrix_.Encode(out);
  tracker_.Encode(out);
}

Result<CausalDomainClock> CausalDomainClock::DecodeState(ByteReader& in) {
  auto self = in.ReadU16();
  if (!self.ok()) return self.status();
  return DecodeStateTail(in, DomainServerId(self.value()));
}

Result<CausalDomainClock> CausalDomainClock::DecodeStateTail(
    ByteReader& in, DomainServerId self) {
  auto mode = in.ReadU8();
  if (!mode.ok()) return mode.status();
  if (mode.value() > static_cast<std::uint8_t>(StampMode::kUpdates)) {
    return Status::DataLoss("bad stamp mode");
  }
  auto matrix = MatrixClock::Decode(in);
  if (!matrix.ok()) return matrix.status();
  auto tracker = UpdatesTracker::Decode(in);
  if (!tracker.ok()) return tracker.status();
  CausalDomainClock clock;
  clock.self_ = self;
  clock.mode_ = static_cast<StampMode>(mode.value());
  clock.matrix_ = std::move(matrix).value();
  clock.tracker_ = std::move(tracker).value();
  return clock;
}

}  // namespace cmom::clocks
