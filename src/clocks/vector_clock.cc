#include "clocks/vector_clock.h"

#include <algorithm>
#include <cassert>

namespace cmom::clocks {

void VectorClock::MergeFrom(const VectorClock& other) {
  assert(size() == other.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i] = std::max(entries_[i], other.entries_[i]);
  }
}

ClockOrder VectorClock::Compare(const VectorClock& other) const {
  assert(size() == other.size());
  bool less = false;
  bool greater = false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i] < other.entries_[i]) less = true;
    if (entries_[i] > other.entries_[i]) greater = true;
  }
  if (less && greater) return ClockOrder::kConcurrent;
  if (less) return ClockOrder::kBefore;
  if (greater) return ClockOrder::kAfter;
  return ClockOrder::kEqual;
}

void VectorClock::Encode(ByteWriter& out) const {
  out.WriteVarU64(entries_.size());
  for (std::uint64_t e : entries_) out.WriteVarU64(e);
}

Result<VectorClock> VectorClock::Decode(ByteReader& in) {
  auto size = in.ReadVarU64();
  if (!size.ok()) return size.status();
  // One encoded byte minimum per entry: reject corrupt sizes before
  // allocating from them.
  if (size.value() > in.remaining()) {
    return Status::DataLoss("vector size exceeds input");
  }
  VectorClock clock(static_cast<std::size_t>(size.value()));
  for (std::size_t i = 0; i < clock.entries_.size(); ++i) {
    auto e = in.ReadVarU64();
    if (!e.ok()) return e.status();
    clock.entries_[i] = e.value();
  }
  return clock;
}

}  // namespace cmom::clocks
