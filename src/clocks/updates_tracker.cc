#include "clocks/updates_tracker.h"

namespace cmom::clocks {

UpdatesTracker::UpdatesTracker(std::size_t size)
    : size_(size), cells_(size * size), node_state_(size, 0) {}

void UpdatesTracker::NoteChange(DomainServerId row, DomainServerId col,
                                std::optional<DomainServerId> writer) {
  CellMeta& cell = cells_[index(row, col)];
  cell.state = ++state_;
  cell.writer = writer ? writer->value() : kSelfWriter;
}

Stamp UpdatesTracker::CollectFor(DomainServerId dest,
                                 const MatrixClock& matrix) {
  Stamp stamp;
  const std::uint64_t since = node_state_[dest.value()];
  for (std::uint16_t row = 0; row < size_; ++row) {
    for (std::uint16_t col = 0; col < size_; ++col) {
      const CellMeta& cell = cells_[static_cast<std::size_t>(row) * size_ + col];
      if (cell.state <= since) continue;
      if (cell.writer == dest.value()) continue;  // dest already knows it
      stamp.entries.push_back(StampEntry{DomainServerId(row),
                                         DomainServerId(col),
                                         matrix.at(DomainServerId(row),
                                                   DomainServerId(col))});
    }
  }
  node_state_[dest.value()] = state_;
  return stamp;
}

UpdatesTracker UpdatesTracker::Remap(
    std::size_t new_size,
    std::span<const std::optional<DomainServerId>> old_of_new) const {
  // Inverse map: old local id -> new local id (or none when departed).
  std::vector<std::optional<std::uint16_t>> new_of_old(size_);
  for (std::size_t i = 0; i < new_size; ++i) {
    if (old_of_new[i]) {
      new_of_old[old_of_new[i]->value()] =
          static_cast<std::uint16_t>(i);
    }
  }
  UpdatesTracker out(new_size);
  out.state_ = state_;
  for (std::size_t i = 0; i < new_size; ++i) {
    if (!old_of_new[i]) continue;
    for (std::size_t j = 0; j < new_size; ++j) {
      if (!old_of_new[j]) continue;
      const CellMeta& old_cell =
          cells_[static_cast<std::size_t>(old_of_new[i]->value()) * size_ +
                 old_of_new[j]->value()];
      CellMeta& cell = out.cells_[i * new_size + j];
      cell.state = old_cell.state;
      // The "never echo back to its writer" refinement only survives
      // when the writer is still a member; a departed writer resets to
      // self-written so the entry is (redundantly, safely) re-sent.
      cell.writer = kSelfWriter;
      if (old_cell.writer != kSelfWriter &&
          old_cell.writer < new_of_old.size() &&
          new_of_old[old_cell.writer]) {
        cell.writer = *new_of_old[old_cell.writer];
      }
    }
  }
  for (std::size_t j = 0; j < new_size; ++j) {
    // A joiner starts at 0: the first message to it carries every live
    // entry, i.e. the full matrix it has no other way to learn.
    out.node_state_[j] =
        old_of_new[j] ? node_state_[old_of_new[j]->value()] : 0;
  }
  return out;
}

void UpdatesTracker::Encode(ByteWriter& out) const {
  out.WriteVarU64(size_);
  out.WriteVarU64(state_);
  for (const CellMeta& cell : cells_) {
    out.WriteVarU64(cell.state);
    out.WriteU32(cell.writer);
  }
  for (std::uint64_t s : node_state_) out.WriteVarU64(s);
}

Result<UpdatesTracker> UpdatesTracker::Decode(ByteReader& in) {
  auto size = in.ReadVarU64();
  if (!size.ok()) return size.status();
  // size^2 cells of >= 5 encoded bytes each must fit in the remaining
  // input; reject corrupt sizes before allocating from them.
  if (size.value() > 0xFFFF ||
      size.value() * size.value() > in.remaining() / 5) {
    return Status::DataLoss("tracker size exceeds input");
  }
  UpdatesTracker tracker(static_cast<std::size_t>(size.value()));
  auto state = in.ReadVarU64();
  if (!state.ok()) return state.status();
  tracker.state_ = state.value();
  for (CellMeta& cell : tracker.cells_) {
    auto cell_state = in.ReadVarU64();
    if (!cell_state.ok()) return cell_state.status();
    auto writer = in.ReadU32();
    if (!writer.ok()) return writer.status();
    cell.state = cell_state.value();
    cell.writer = writer.value();
  }
  for (std::uint64_t& s : tracker.node_state_) {
    auto node_state = in.ReadVarU64();
    if (!node_state.ok()) return node_state.status();
    s = node_state.value();
  }
  return tracker;
}

}  // namespace cmom::clocks
