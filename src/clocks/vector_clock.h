// Vector clock.
//
// Not used on the MOM's hot path (AAA orders with matrix clocks); kept
// for the offline causality oracle, for tests that cross-check the
// matrix protocol against an independent characterization of causal
// precedence, and as the building block the related-work baselines
// ([13],[17]) rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace cmom::clocks {

enum class ClockOrder { kBefore, kAfter, kEqual, kConcurrent };

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t size) : entries_(size, 0) {}

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::uint64_t at(std::size_t i) const { return entries_[i]; }
  void set(std::size_t i, std::uint64_t v) { entries_[i] = v; }
  std::uint64_t Increment(std::size_t i) { return ++entries_[i]; }

  void MergeFrom(const VectorClock& other);

  // Lattice comparison of two clocks of the same size.
  [[nodiscard]] ClockOrder Compare(const VectorClock& other) const;

  // a happens-before b in the vector-clock sense.
  [[nodiscard]] bool HappensBefore(const VectorClock& other) const {
    return Compare(other) == ClockOrder::kBefore;
  }

  [[nodiscard]] bool operator==(const VectorClock&) const = default;

  void Encode(ByteWriter& out) const;
  [[nodiscard]] static Result<VectorClock> Decode(ByteReader& in);

 private:
  std::vector<std::uint64_t> entries_;
};

}  // namespace cmom::clocks
