#include "clocks/cbcast.h"

#include <cassert>

namespace cmom::clocks {

VectorClock CbcastNode::PrepareBroadcast() {
  clock_.Increment(self_);
  return clock_;
}

CheckResult CbcastNode::Check(std::size_t sender,
                              const VectorClock& stamp) const {
  assert(sender < clock_.size());
  assert(stamp.size() == clock_.size());
  const std::uint64_t expected = clock_.at(sender) + 1;
  if (stamp.at(sender) < expected) return CheckResult::kDuplicate;
  if (stamp.at(sender) > expected) return CheckResult::kHold;
  for (std::size_t k = 0; k < clock_.size(); ++k) {
    if (k == sender) continue;
    if (stamp.at(k) > clock_.at(k)) return CheckResult::kHold;
  }
  return CheckResult::kDeliver;
}

void CbcastNode::Commit(std::size_t sender, const VectorClock& stamp) {
  (void)sender;
  clock_.MergeFrom(stamp);
}

}  // namespace cmom::clocks
