#include "clocks/causal_core.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace cmom::clocks {
namespace {

// Leading u16 of a sentinel-tagged durable record.  A legacy matrix
// image starts with the domain-local self id, which is always a valid
// matrix index and therefore < 0xFFFF.
constexpr std::uint16_t kCoreStateSentinel = 0xFFFF;

}  // namespace

std::string_view CausalCoreKindName(CausalCoreKind kind) {
  switch (kind) {
    case CausalCoreKind::kMatrix: return "matrix";
    case CausalCoreKind::kHybrid: return "hybrid";
    case CausalCoreKind::kReduced: return "reduced";
  }
  return "?";
}

std::optional<CausalCoreKind> ParseCausalCoreKind(std::string_view name) {
  if (name == "matrix") return CausalCoreKind::kMatrix;
  if (name == "hybrid") return CausalCoreKind::kHybrid;
  if (name == "reduced") return CausalCoreKind::kReduced;
  return std::nullopt;
}

std::size_t CausalCoreStampCost(CausalCoreKind kind,
                                std::size_t domain_size) {
  switch (kind) {
    case CausalCoreKind::kMatrix: return domain_size * domain_size;
    case CausalCoreKind::kReduced: return domain_size;
    case CausalCoreKind::kHybrid: return 1;
  }
  return domain_size * domain_size;
}

void CausalCore::PrepareSendBatch(DomainServerId dest, std::size_t count,
                                  std::vector<Stamp>& out) {
  out.reserve(out.size() + count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(PrepareSend(dest));
}

bool MatrixClockCore::Equals(const CausalCore& other) const {
  const auto* rhs = dynamic_cast<const MatrixClockCore*>(&other);
  return rhs != nullptr && clock_ == rhs->clock_;
}

// ---------------------------------------------------------------------------
// ReducedMatrixCore

ReducedMatrixCore::ReducedMatrixCore(DomainServerId self,
                                     std::size_t domain_size)
    : self_(self), matrix_(domain_size), tracker_(domain_size) {
  assert(self.value() < domain_size);
}

Stamp ReducedMatrixCore::PrepareSend(DomainServerId dest) {
  assert(dest.value() < matrix_.size());
  matrix_.Increment(self_, dest);
  ++version_;
  tracker_.NoteChange(self_, dest, std::nullopt);
  Stamp stamp = tracker_.CollectFor(dest, matrix_);
  // Top the delta up to the complete destination column so the
  // receiver's delivery check never depends on link history.  Column
  // cells the delta already carries are not repeated.
  for (std::uint16_t row = 0; row < matrix_.size(); ++row) {
    const DomainServerId r{row};
    const std::uint64_t value = matrix_.at(r, dest);
    if (value == 0) continue;
    if (stamp.Find(r, dest) == nullptr) {
      stamp.entries.push_back(StampEntry{r, dest, value});
    }
  }
  return stamp;
}

CheckResult ReducedMatrixCore::CheckReceive(DomainServerId src,
                                            const Stamp& stamp) const {
  assert(src.value() < matrix_.size());
  const StampEntry* own = stamp.Find(src, self_);
  assert(own != nullptr && "stamp lacks its own send counter");
  const std::uint64_t delivered = matrix_.at(src, self_);
  if (own->value <= delivered) return CheckResult::kDuplicate;
  if (own->value > delivered + 1) return CheckResult::kHold;  // FIFO gap
  for (const StampEntry& e : stamp.entries) {
    if (e.col != self_ || e.row == src) continue;
    if (e.value > matrix_.at(e.row, e.col)) return CheckResult::kHold;
  }
  return CheckResult::kDeliver;
}

void ReducedMatrixCore::OnDeliver(DomainServerId src, const Stamp& stamp) {
  bool changed = false;
  for (const StampEntry& e : stamp.entries) {
    if (e.value > matrix_.at(e.row, e.col)) {
      matrix_.set(e.row, e.col, e.value);
      tracker_.NoteChange(e.row, e.col, src);
      changed = true;
    }
  }
  if (changed) ++version_;
}

std::unique_ptr<CausalCore> ReducedMatrixCore::Remap(
    DomainServerId new_self, std::size_t new_size,
    std::span<const std::optional<DomainServerId>> old_of_new) const {
  assert(new_self.value() < new_size);
  auto out = std::unique_ptr<ReducedMatrixCore>(new ReducedMatrixCore());
  out->self_ = new_self;
  out->matrix_ = matrix_.Remap(new_size, old_of_new);
  out->tracker_ = tracker_.Remap(new_size, old_of_new);
  return out;
}

void ReducedMatrixCore::EncodeState(ByteWriter& out) const {
  out.WriteU16(kCoreStateSentinel);
  out.WriteU8(static_cast<std::uint8_t>(CausalCoreKind::kReduced));
  out.WriteU16(self_.value());
  matrix_.Encode(out);
  tracker_.Encode(out);
}

Result<std::unique_ptr<CausalCore>> ReducedMatrixCore::DecodeBody(
    ByteReader& in) {
  auto self = in.ReadU16();
  if (!self.ok()) return self.status();
  auto matrix = MatrixClock::Decode(in);
  if (!matrix.ok()) return matrix.status();
  auto tracker = UpdatesTracker::Decode(in);
  if (!tracker.ok()) return tracker.status();
  if (self.value() >= matrix.value().size()) {
    return Status::DataLoss("reduced core self id out of range");
  }
  auto core = std::unique_ptr<ReducedMatrixCore>(new ReducedMatrixCore());
  core->self_ = DomainServerId(self.value());
  core->matrix_ = std::move(matrix).value();
  core->tracker_ = std::move(tracker).value();
  return std::unique_ptr<CausalCore>(std::move(core));
}

bool ReducedMatrixCore::Equals(const CausalCore& other) const {
  const auto* rhs = dynamic_cast<const ReducedMatrixCore*>(&other);
  return rhs != nullptr && self_ == rhs->self_ && matrix_ == rhs->matrix_ &&
         tracker_ == rhs->tracker_;
}

// ---------------------------------------------------------------------------
// HybridBufferingCore

HybridBufferingCore::HybridBufferingCore(DomainServerId self,
                                         std::size_t domain_size)
    : self_(self), size_(domain_size), sent_(domain_size, 0),
      delivered_(domain_size, 0), heard_(domain_size * domain_size, 0),
      delivered_tick_(domain_size, 0), sent_tick_(domain_size, 0),
      heard_tick_(domain_size * domain_size, 0) {
  assert(self.value() < domain_size);
  assert(domain_size <= kHeardFlag && "hybrid core caps domains at 0x8000");
}

Stamp HybridBufferingCore::PrepareSend(DomainServerId dest) {
  assert(dest.value() < size_);
  const std::uint64_t seq = ++sent_[dest.value()];
  ++version_;
  Stamp stamp;
  stamp.entries.reserve(1 + barriers_.size());
  stamp.entries.push_back(StampEntry{self_, dest, seq});
  // The full barrier set rides on every message; that is what makes the
  // receiver's check transitively complete without any matrix.
  for (const auto& [link, bseq] : barriers_) {
    stamp.entries.push_back(StampEntry{DomainServerId(link.first),
                                       DomainServerId(link.second), bseq});
  }
  // Delivered-count gossip: every count that advanced since the last
  // send to this destination -- our own deliveries and counts heard
  // third-hand alike, so pruning knowledge spreads transitively.
  const std::uint64_t last = sent_tick_[dest.value()];
  for (std::uint16_t origin = 0; origin < size_; ++origin) {
    if (delivered_tick_[origin] > last) {
      stamp.entries.push_back(
          StampEntry{DomainServerId(origin | kHeardFlag), self_,
                     delivered_[origin]});
    }
  }
  for (std::uint16_t d = 0; d < size_; ++d) {
    if (d == self_.value()) continue;
    for (std::uint16_t origin = 0; origin < size_; ++origin) {
      const std::size_t idx =
          pair_index(DomainServerId(d), DomainServerId(origin));
      if (heard_tick_[idx] > last) {
        stamp.entries.push_back(StampEntry{DomainServerId(origin | kHeardFlag),
                                           DomainServerId(d), heard_[idx]});
      }
    }
  }
  sent_tick_[dest.value()] = tick_;
  // This message itself is now possibly undelivered; later sends (to
  // anyone) must carry it until its delivery is confirmed.
  barriers_[{self_.value(), dest.value()}] = seq;
  return stamp;
}

CheckResult HybridBufferingCore::CheckReceive(DomainServerId src,
                                              const Stamp& stamp) const {
  assert(src.value() < size_);
  assert(!stamp.entries.empty() && "hybrid stamp lacks its FIFO header");
  const StampEntry& header = stamp.entries.front();
  assert(header.row == src && "hybrid stamp header sender mismatch");
  const std::uint64_t delivered = delivered_[src.value()];
  if (header.value <= delivered) return CheckResult::kDuplicate;
  if (header.value > delivered + 1) return CheckResult::kHold;  // FIFO gap
  for (std::size_t i = 1; i < stamp.entries.size(); ++i) {
    const StampEntry& e = stamp.entries[i];
    if ((e.row.value() & kHeardFlag) != 0) continue;  // delivered gossip
    if (e.col != self_) continue;  // barrier for someone else
    // A message destined to us, in this message's causal past, that the
    // sender could not confirm as delivered.  FIFO per link means one
    // comparison settles every seq <= e.value.
    if (delivered_[e.row.value()] < e.value) return CheckResult::kHold;
  }
  return CheckResult::kDeliver;
}

void HybridBufferingCore::OnDeliver(DomainServerId src, const Stamp& stamp) {
  assert(!stamp.entries.empty());
  const StampEntry& header = stamp.entries.front();
  delivered_[src.value()] = header.value;
  ++tick_;
  delivered_tick_[src.value()] = tick_;
  ++version_;
  for (std::size_t i = 1; i < stamp.entries.size(); ++i) {
    const StampEntry& e = stamp.entries[i];
    if ((e.row.value() & kHeardFlag) != 0) {
      // Gossip: e.value messages of the origin -> e.col link are known
      // delivered.  Prune barriers on that link and remember the count.
      // Re-gossip onward ONLY when the count pruned one of our own
      // barriers: we then know we may have shipped that barrier to
      // others, so the confirmation retraces the barrier's own
      // dissemination paths instead of flooding every node with every
      // count (which would put the O(s^2) epidemic right back on the
      // wire).
      const DomainServerId origin(
          static_cast<std::uint16_t>(e.row.value() & ~kHeardFlag));
      if (e.col == self_) continue;  // our own deliveries; we know better
      std::uint64_t& known = heard_[pair_index(e.col, origin)];
      if (e.value <= known) continue;
      known = e.value;
      auto it = barriers_.find({origin.value(), e.col.value()});
      if (it != barriers_.end() && it->second <= e.value) {
        barriers_.erase(it);
        heard_tick_[pair_index(e.col, origin)] = tick_;
      }
      continue;
    }
    if (e.col == self_) continue;  // satisfied: CheckReceive proved it
    if (e.value <= heard_[pair_index(e.col, e.row)]) continue;  // delivered
    std::uint64_t& slot = barriers_[{e.row.value(), e.col.value()}];
    slot = std::max(slot, e.value);
  }
  // Our own delivery of this message prunes any barrier we carried for
  // the src -> self link.
  auto own = barriers_.find({src.value(), self_.value()});
  if (own != barriers_.end() && own->second <= header.value) {
    barriers_.erase(own);
  }
}

std::unique_ptr<CausalCore> HybridBufferingCore::Remap(
    DomainServerId new_self, std::size_t new_size,
    std::span<const std::optional<DomainServerId>> old_of_new) const {
  assert(new_self.value() < new_size);
  assert(old_of_new.size() == new_size);
  auto out = std::unique_ptr<HybridBufferingCore>(new HybridBufferingCore());
  out->self_ = new_self;
  out->size_ = new_size;
  out->sent_.assign(new_size, 0);
  out->delivered_.assign(new_size, 0);
  out->heard_.assign(new_size * new_size, 0);
  out->delivered_tick_.assign(new_size, 0);
  out->sent_tick_.assign(new_size, 0);
  out->heard_tick_.assign(new_size * new_size, 0);
  // Old domain-local index of each new member, for barrier remapping.
  std::vector<std::optional<std::uint16_t>> new_of_old;
  for (std::uint16_t n = 0; n < new_size; ++n) {
    const auto& old = old_of_new[n];
    if (!old.has_value()) continue;
    out->sent_[n] = sent_[old->value()];
    out->delivered_[n] = delivered_[old->value()];
    if (new_of_old.size() <= old->value()) {
      new_of_old.resize(old->value() + 1);
    }
    new_of_old[old->value()] = n;
    for (std::uint16_t m = 0; m < new_size; ++m) {
      const auto& old_m = old_of_new[m];
      if (!old_m.has_value()) continue;
      out->heard_[out->pair_index(DomainServerId(n), DomainServerId(m))] =
          heard_[pair_index(DomainServerId(old->value()),
                            DomainServerId(old_m->value()))];
    }
  }
  auto mapped = [&](std::uint16_t old_id) -> std::optional<std::uint16_t> {
    if (old_id >= new_of_old.size()) return std::nullopt;
    return new_of_old[old_id];
  };
  // Barriers touching a departed member are dropped: the member is gone,
  // its undelivered messages with it (Remap runs on a quiesced domain).
  for (const auto& [link, seq] : barriers_) {
    const auto origin = mapped(link.first);
    const auto dest = mapped(link.second);
    if (!origin.has_value() || !dest.has_value()) continue;
    out->barriers_[{*origin, *dest}] = seq;
  }
  return out;
}

void HybridBufferingCore::EncodeState(ByteWriter& out) const {
  out.WriteU16(kCoreStateSentinel);
  out.WriteU8(static_cast<std::uint8_t>(CausalCoreKind::kHybrid));
  out.WriteU16(self_.value());
  out.WriteVarU64(size_);
  for (std::uint64_t v : sent_) out.WriteVarU64(v);
  for (std::uint64_t v : delivered_) out.WriteVarU64(v);
  for (std::uint64_t v : heard_) out.WriteVarU64(v);
  out.WriteVarU64(tick_);
  for (std::uint64_t v : delivered_tick_) out.WriteVarU64(v);
  for (std::uint64_t v : sent_tick_) out.WriteVarU64(v);
  for (std::uint64_t v : heard_tick_) out.WriteVarU64(v);
  out.WriteVarU64(barriers_.size());
  for (const auto& [link, seq] : barriers_) {
    out.WriteU16(link.first);
    out.WriteU16(link.second);
    out.WriteVarU64(seq);
  }
}

Result<std::unique_ptr<CausalCore>> HybridBufferingCore::DecodeBody(
    ByteReader& in) {
  auto self = in.ReadU16();
  if (!self.ok()) return self.status();
  auto size = in.ReadVarU64();
  if (!size.ok()) return size.status();
  if (size.value() > HybridBufferingCore::kHeardFlag ||
      self.value() >= size.value()) {
    return Status::DataLoss("hybrid core image has bad geometry");
  }
  const std::size_t n = static_cast<std::size_t>(size.value());
  auto core = std::unique_ptr<HybridBufferingCore>(new HybridBufferingCore());
  core->self_ = DomainServerId(self.value());
  core->size_ = n;
  auto read_vec = [&in](std::vector<std::uint64_t>& vec,
                        std::size_t count) -> Status {
    vec.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      auto v = in.ReadVarU64();
      if (!v.ok()) return v.status();
      vec[i] = v.value();
    }
    return Status::Ok();
  };
  if (auto s = read_vec(core->sent_, n); !s.ok()) return s;
  if (auto s = read_vec(core->delivered_, n); !s.ok()) return s;
  if (auto s = read_vec(core->heard_, n * n); !s.ok()) return s;
  auto tick = in.ReadVarU64();
  if (!tick.ok()) return tick.status();
  core->tick_ = tick.value();
  if (auto s = read_vec(core->delivered_tick_, n); !s.ok()) return s;
  if (auto s = read_vec(core->sent_tick_, n); !s.ok()) return s;
  if (auto s = read_vec(core->heard_tick_, n * n); !s.ok()) return s;
  auto count = in.ReadVarU64();
  if (!count.ok()) return count.status();
  if (count.value() > in.remaining()) {
    return Status::DataLoss("hybrid core barrier count exceeds record");
  }
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto origin = in.ReadU16();
    if (!origin.ok()) return origin.status();
    auto dest = in.ReadU16();
    if (!dest.ok()) return dest.status();
    auto seq = in.ReadVarU64();
    if (!seq.ok()) return seq.status();
    core->barriers_[{origin.value(), dest.value()}] = seq.value();
  }
  return std::unique_ptr<CausalCore>(std::move(core));
}

bool HybridBufferingCore::Equals(const CausalCore& other) const {
  const auto* rhs = dynamic_cast<const HybridBufferingCore*>(&other);
  return rhs != nullptr && self_ == rhs->self_ && size_ == rhs->size_ &&
         sent_ == rhs->sent_ && delivered_ == rhs->delivered_ &&
         barriers_ == rhs->barriers_ && heard_ == rhs->heard_ &&
         tick_ == rhs->tick_ && delivered_tick_ == rhs->delivered_tick_ &&
         sent_tick_ == rhs->sent_tick_ && heard_tick_ == rhs->heard_tick_;
}

// ---------------------------------------------------------------------------

std::unique_ptr<CausalCore> MakeCausalCore(CausalCoreKind kind,
                                           DomainServerId self,
                                           std::size_t domain_size,
                                           StampMode mode) {
  switch (kind) {
    case CausalCoreKind::kMatrix:
      return std::make_unique<MatrixClockCore>(self, domain_size, mode);
    case CausalCoreKind::kHybrid:
      return std::make_unique<HybridBufferingCore>(self, domain_size);
    case CausalCoreKind::kReduced:
      return std::make_unique<ReducedMatrixCore>(self, domain_size);
  }
  return std::make_unique<MatrixClockCore>(self, domain_size, mode);
}

Result<std::unique_ptr<CausalCore>> DecodeCausalCoreState(ByteReader& in) {
  auto lead = in.ReadU16();
  if (!lead.ok()) return lead.status();
  if (lead.value() != kCoreStateSentinel) {
    // Legacy matrix image: the u16 we consumed was the self id.
    auto clock = CausalDomainClock::DecodeStateTail(
        in, DomainServerId(lead.value()));
    if (!clock.ok()) return clock.status();
    return std::unique_ptr<CausalCore>(
        std::make_unique<MatrixClockCore>(std::move(clock).value()));
  }
  auto kind = in.ReadU8();
  if (!kind.ok()) return kind.status();
  switch (static_cast<CausalCoreKind>(kind.value())) {
    case CausalCoreKind::kHybrid:
      return HybridBufferingCore::DecodeBody(in);
    case CausalCoreKind::kReduced:
      return ReducedMatrixCore::DecodeBody(in);
    case CausalCoreKind::kMatrix:
      break;  // the matrix core never writes tagged records
  }
  return Status::DataLoss("unknown causal core kind " +
                          std::to_string(kind.value()));
}

}  // namespace cmom::clocks
