// Dense matrix clock.
//
// Entry M[k][l] counts the messages sent by server k to server l that
// the owner of the clock knows about (the Raynal-Schiper-Toueg
// convention, reference [12] of the paper, which the AAA MOM uses).
// A matrix clock over n servers needs n^2 entries; the paper's whole
// point is to keep n small by scoping one clock per *domain* instead of
// one global clock, so this class is always indexed by DomainServerId.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/status.h"

namespace cmom::clocks {

class MatrixClock {
 public:
  MatrixClock() = default;
  explicit MatrixClock(std::size_t size) : size_(size), cells_(size * size, 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] std::uint64_t at(DomainServerId row, DomainServerId col) const {
    return cells_[index(row, col)];
  }
  void set(DomainServerId row, DomainServerId col, std::uint64_t v) {
    cells_[index(row, col)] = v;
  }
  // Increments M[row][col] and returns the new value.
  std::uint64_t Increment(DomainServerId row, DomainServerId col) {
    return ++cells_[index(row, col)];
  }

  // Entrywise max with another clock of the same size (lattice join).
  void MergeFrom(const MatrixClock& other);

  // True if every entry of this clock is <= the corresponding entry of
  // other (lattice order).
  [[nodiscard]] bool DominatedBy(const MatrixClock& other) const;

  // Sum of all entries; a cheap progress measure used by tests.
  [[nodiscard]] std::uint64_t Total() const;

  // Rebuilds the clock over a new domain membership (epoch cutover):
  // `old_of_new[i]` is the old local id now sitting at new local id i,
  // or nullopt for a member that just joined.  New entry (i, j) takes
  // the old value when both coordinates map and 0 otherwise -- growing,
  // shrinking and permuting are all the same operation.  Only correct
  // on a quiesced domain (no frame in flight carries old coordinates).
  [[nodiscard]] MatrixClock Remap(
      std::size_t new_size,
      std::span<const std::optional<DomainServerId>> old_of_new) const;

  [[nodiscard]] bool operator==(const MatrixClock&) const = default;

  // Persistent image of the clock, as the AAA Channel stores on each
  // commit.  The encoded size is what the paper's "high disk I/O"
  // concern is about, so callers can meter it.
  void Encode(ByteWriter& out) const;
  [[nodiscard]] static Result<MatrixClock> Decode(ByteReader& in);

 private:
  [[nodiscard]] std::size_t index(DomainServerId row, DomainServerId col) const {
    return static_cast<std::size_t>(row.value()) * size_ + col.value();
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> cells_;
};

}  // namespace cmom::clocks
