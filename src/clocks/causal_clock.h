// Per-domain causal ordering protocol (the AAA Channel's clock logic).
//
// One CausalDomainClock instance exists per (server, domain) pair: a
// plain server has one, a causal router-server has one per domain it
// belongs to (the paper's DomainItem holds it, see Section 5).
//
// Protocol (Raynal-Schiper-Toueg over domain-local ids):
//   send i -> j : M[i][j] += 1; piggyback stamp
//   recv at j from i, stamp T:
//     deliverable  iff  T[i][j] == M[i][j] + 1
//                  and  for all k != i : T[k][j] <= M[k][j]
//     on delivery  M := max(M, T) entrywise
// With StampMode::kFullMatrix the stamp carries all s^2 entries; with
// StampMode::kUpdates it carries only the Appendix-A delta.  The
// delivery condition only ever needs entries with col == j: an entry
// absent from a delta stamp was unchanged since an earlier message on
// the same link, and the FIFO-per-link order that the condition itself
// enforces guarantees the receiver already merged it, so the missing
// entry satisfies the check vacuously.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "clocks/matrix_clock.h"
#include "clocks/stamp.h"
#include "clocks/updates_tracker.h"
#include "common/bytes.h"
#include "common/ids.h"
#include "common/status.h"

namespace cmom::clocks {

enum class StampMode : std::uint8_t {
  kFullMatrix = 0,  // classical algorithm: O(s^2) bytes per message
  kUpdates = 1,     // Appendix-A deltas: O(changes) bytes per message
};

enum class CheckResult : std::uint8_t {
  kDeliver,    // all causal predecessors delivered; deliver now
  kHold,       // some predecessor missing; park in the hold-back queue
  kDuplicate,  // already delivered (retransmission); drop
};

class CausalDomainClock {
 public:
  CausalDomainClock() = default;
  CausalDomainClock(DomainServerId self, std::size_t domain_size,
                    StampMode mode);

  [[nodiscard]] DomainServerId self() const { return self_; }
  [[nodiscard]] std::size_t domain_size() const { return matrix_.size(); }
  [[nodiscard]] StampMode mode() const { return mode_; }

  // Sender side: accounts for one message self -> dest and returns the
  // stamp to piggyback on it.
  [[nodiscard]] Stamp PrepareSend(DomainServerId dest);

  // Batched sender side: accounts for `count` messages self -> dest and
  // appends their stamps to `out`, in send order.  Produces exactly the
  // stamps `count` sequential PrepareSend calls would (delivery-side
  // behavior is indistinguishable) but walks the matrix once: in
  // kFullMatrix mode the s^2 snapshot is built for the first message
  // and later stamps only patch the send counter; in kUpdates mode the
  // tracker drains on the first stamp so the rest are minimal deltas.
  // One version bump per batch (the dirty flag is binary, so commit
  // coalescing is unaffected).
  void PrepareSendBatch(DomainServerId dest, std::size_t count,
                        std::vector<Stamp>& out);

  // Receiver side, step 1: classify an incoming message from `src`
  // stamped `stamp` without changing any state.
  [[nodiscard]] CheckResult Check(DomainServerId src,
                                  const Stamp& stamp) const;

  // Receiver side, step 2: merge the stamp into the local clock.  Must
  // only be called after Check() returned kDeliver for this stamp.
  void Commit(DomainServerId src, const Stamp& stamp);

  [[nodiscard]] const MatrixClock& matrix() const { return matrix_; }

  // Rebuilds the clock over a new domain membership (epoch cutover):
  // matrix and tracker are remapped together (see MatrixClock::Remap),
  // the stamp mode is preserved, and the mutation version restarts at 0
  // like a freshly recovered clock.  Only correct on a quiesced domain.
  [[nodiscard]] CausalDomainClock Remap(
      DomainServerId new_self, std::size_t new_size,
      std::span<const std::optional<DomainServerId>> old_of_new) const;

  // Durable image (matrix + updates tracker), written by the Channel
  // whenever the clock advanced since the last commit so that recovery
  // resumes exactly where the crash happened.
  void EncodeState(ByteWriter& out) const;
  [[nodiscard]] static Result<CausalDomainClock> DecodeState(ByteReader& in);

  // Decodes everything after the leading self id (mode byte, matrix,
  // tracker).  Split out so the causal-core store decoder, which has to
  // consume the leading u16 to sniff the record format, can resume a
  // legacy matrix image without re-buffering.  See causal_core.h.
  [[nodiscard]] static Result<CausalDomainClock> DecodeStateTail(
      ByteReader& in, DomainServerId self);

  // Mutation counter (dirty-tracking hook for incremental persistence):
  // bumped by every PrepareSend and by every Commit that changed at
  // least one matrix entry.  The Channel remembers the version it last
  // persisted and skips the domain's durable image when unchanged --
  // the disk-layer analogue of the Appendix A "send only the delta"
  // optimization.  Not part of the durable image: a recovered clock
  // restarts at version 0.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  [[nodiscard]] bool operator==(const CausalDomainClock& other) const {
    // version_ is transient bookkeeping; two clocks with equal protocol
    // state compare equal regardless of their mutation history.
    return self_ == other.self_ && mode_ == other.mode_ &&
           matrix_ == other.matrix_ && tracker_ == other.tracker_;
  }

 private:
  DomainServerId self_;
  StampMode mode_ = StampMode::kUpdates;
  MatrixClock matrix_;
  UpdatesTracker tracker_;
  std::uint64_t version_ = 0;
};

}  // namespace cmom::clocks
