#include "clocks/stamp.h"

namespace cmom::clocks {

const StampEntry* Stamp::Find(DomainServerId row, DomainServerId col) const {
  for (const StampEntry& e : entries) {
    if (e.row == row && e.col == col) return &e;
  }
  return nullptr;
}

void Stamp::Encode(ByteWriter& out) const {
  out.WriteVarU64(entries.size());
  for (const StampEntry& e : entries) {
    out.WriteVarU32(e.row.value());
    out.WriteVarU32(e.col.value());
    out.WriteVarU64(e.value);
  }
}

Result<Stamp> Stamp::Decode(ByteReader& in) {
  auto count = in.ReadVarU64();
  if (!count.ok()) return count.status();
  // Each entry costs at least 3 encoded bytes; a count the input cannot
  // possibly back is corruption, and must be rejected *before* any
  // allocation sized from it.
  if (count.value() > in.remaining() / 3) {
    return Status::DataLoss("stamp entry count exceeds input");
  }
  Stamp stamp;
  stamp.entries.reserve(static_cast<std::size_t>(count.value()));
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto row = in.ReadVarU32();
    if (!row.ok()) return row.status();
    auto col = in.ReadVarU32();
    if (!col.ok()) return col.status();
    auto value = in.ReadVarU64();
    if (!value.ok()) return value.status();
    stamp.entries.push_back(StampEntry{
        DomainServerId(static_cast<std::uint16_t>(row.value())),
        DomainServerId(static_cast<std::uint16_t>(col.value())),
        value.value()});
  }
  return stamp;
}

std::size_t Stamp::EncodedSize() const {
  ByteWriter writer;
  Encode(writer);
  return writer.size();
}

std::ostream& operator<<(std::ostream& os, const Stamp& stamp) {
  os << "{";
  for (std::size_t i = 0; i < stamp.entries.size(); ++i) {
    const StampEntry& e = stamp.entries[i];
    if (i > 0) os << ", ";
    os << "(" << e.row << "," << e.col << ")=" << e.value;
  }
  return os << "}";
}

}  // namespace cmom::clocks
