// Hold-back queue for causally premature messages.
//
// Messages whose delivery condition is not yet satisfied wait here.
// Whenever a delivery commits (which can only *enable* held messages,
// never disable them), DrainDeliverable re-examines the queue until a
// fixed point.  The queue preserves arrival order between repeated
// scans so equally-ready messages deliver in arrival order, keeping
// runs deterministic.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "clocks/causal_clock.h"

namespace cmom::clocks {

// M is the queued message type.  Checker: (const M&) -> CheckResult.
// Deliverer: (M&&) -> void, invoked exactly once per delivered message.
template <typename M>
class HoldbackQueue {
 public:
  void Push(M message) { pending_.push_back(std::move(message)); }

  [[nodiscard]] std::size_t size() const { return pending_.size(); }
  [[nodiscard]] bool empty() const { return pending_.empty(); }

  // Repeatedly scans the queue, delivering every message whose check
  // passes, until a whole pass makes no progress.  Duplicates are
  // dropped, passing through `drop` so an owner keeping an external
  // index (or a per-entry durable image) of the queue can stay in sync.
  // Returns the number of messages delivered.
  template <typename Checker, typename Deliverer, typename Dropper>
  std::size_t DrainDeliverable(Checker&& check, Deliverer&& deliver,
                               Dropper&& drop) {
    std::size_t delivered = 0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = pending_.begin(); it != pending_.end();) {
        switch (check(*it)) {
          case CheckResult::kDeliver: {
            M message = std::move(*it);
            it = pending_.erase(it);
            deliver(std::move(message));
            ++delivered;
            progressed = true;
            break;
          }
          case CheckResult::kDuplicate: {
            M message = std::move(*it);
            it = pending_.erase(it);
            drop(std::move(message));
            progressed = true;
            break;
          }
          case CheckResult::kHold:
            ++it;
            break;
        }
      }
    }
    return delivered;
  }

  template <typename Checker, typename Deliverer>
  std::size_t DrainDeliverable(Checker&& check, Deliverer&& deliver) {
    return DrainDeliverable(std::forward<Checker>(check),
                            std::forward<Deliverer>(deliver), [](M&&) {});
  }

  // Access for persistence: the queue is part of the channel's durable
  // state (messages received but not yet deliverable must survive a
  // crash, otherwise the FIFO gap they fill would be lost).
  [[nodiscard]] const std::deque<M>& pending() const { return pending_; }
  void Restore(std::deque<M> pending) { pending_ = std::move(pending); }

 private:
  std::deque<M> pending_;
};

}  // namespace cmom::clocks
