// Lamport scalar clock.
//
// The weakest of the three logical-time schemes the paper's
// introduction surveys ([8]).  The trace recorder uses it to give every
// recorded event a total order consistent with causality, which makes
// oracle output deterministic and human-readable.
#pragma once

#include <algorithm>
#include <cstdint>

namespace cmom::clocks {

class LamportClock {
 public:
  // Local event: advance and return the new time.
  std::uint64_t Tick() { return ++time_; }

  // Receive event carrying the sender's timestamp.
  std::uint64_t Witness(std::uint64_t remote) {
    time_ = std::max(time_, remote) + 1;
    return time_;
  }

  [[nodiscard]] std::uint64_t now() const { return time_; }

 private:
  std::uint64_t time_ = 0;
};

}  // namespace cmom::clocks
