// Causal stamps piggybacked on messages.
//
// A stamp is a set of matrix-clock entries (row, col, value).  The
// classical algorithm ships the whole s*s matrix; the Appendix-A
// "Updates" optimization ships only the entries modified since the last
// message sent to the same destination.  Both cases are represented by
// the same Stamp type so the delivery logic is codec-independent, and
// EncodedSize() reports the exact wire cost the paper's evaluation is
// about.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/status.h"

namespace cmom::clocks {

struct StampEntry {
  DomainServerId row;   // sender of the counted messages
  DomainServerId col;   // receiver of the counted messages
  std::uint64_t value;  // number of such messages known

  friend bool operator==(const StampEntry&, const StampEntry&) = default;
};

struct Stamp {
  std::vector<StampEntry> entries;

  friend bool operator==(const Stamp&, const Stamp&) = default;

  // Looks up entry (row, col); returns nullptr when absent.
  [[nodiscard]] const StampEntry* Find(DomainServerId row,
                                       DomainServerId col) const;

  void Encode(ByteWriter& out) const;
  [[nodiscard]] static Result<Stamp> Decode(ByteReader& in);

  // Exact number of bytes Encode() would produce.
  [[nodiscard]] std::size_t EncodedSize() const;
};

std::ostream& operator<<(std::ostream& os, const Stamp& stamp);

}  // namespace cmom::clocks
