// Binary serialization primitives.
//
// The paper's scalability argument is about *bytes on the wire*: a flat
// matrix timestamp costs O(n^2) per message while the domain split plus
// the Updates optimization keeps stamps small.  To make those costs
// measurable rather than notional, every message and clock stamp in this
// repo is encoded through this explicit little-endian codec, and the
// transports charge serialization cost per encoded byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cmom {

using Bytes = std::vector<std::uint8_t>;

// Appends fixed-width and varint-encoded values to a byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : buffer_(std::move(initial)) {}

  void WriteU8(std::uint8_t v) { buffer_.push_back(v); }
  void WriteU16(std::uint16_t v) { WriteLittleEndian(v); }
  void WriteU32(std::uint32_t v) { WriteLittleEndian(v); }
  void WriteU64(std::uint64_t v) { WriteLittleEndian(v); }

  // LEB128-style variable-length encoding; small counters (the common
  // case for clock entries) cost one byte.
  void WriteVarU64(std::uint64_t v);
  void WriteVarU32(std::uint32_t v) { WriteVarU64(v); }

  void WriteBytes(std::span<const std::uint8_t> data);
  void WriteString(std::string_view s);

  // Pre-grows capacity for `additional` more bytes.  Encode paths that
  // know their frame size (message serialization, per-peer wire
  // buffers) call this once instead of letting push_back reallocate
  // O(log n) times per frame.
  void Reserve(std::size_t additional) {
    buffer_.reserve(buffer_.size() + additional);
  }

  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] const Bytes& buffer() const { return buffer_; }
  [[nodiscard]] Bytes Take() && { return std::move(buffer_); }

 private:
  template <typename T>
  void WriteLittleEndian(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buffer_;
};

// Reads values written by ByteWriter.  All reads are bounds-checked and
// report kDataLoss on truncated input instead of crashing: transports
// hand us bytes that may have been corrupted by fault injection.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> ReadU8();
  [[nodiscard]] Result<std::uint16_t> ReadU16();
  [[nodiscard]] Result<std::uint32_t> ReadU32();
  [[nodiscard]] Result<std::uint64_t> ReadU64();
  [[nodiscard]] Result<std::uint64_t> ReadVarU64();
  [[nodiscard]] Result<std::uint32_t> ReadVarU32();
  [[nodiscard]] Result<Bytes> ReadBytes();
  // ReadBytes into a buffer recycled from the calling thread's
  // BufferPool freelist (common/buffer_pool.h) -- decode paths on the
  // frame hot path use this so payload allocations amortize to zero.
  [[nodiscard]] Result<Bytes> ReadBytesPooled();
  [[nodiscard]] Result<std::string> ReadString();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  template <typename T>
  [[nodiscard]] Result<T> ReadLittleEndian() {
    if (remaining() < sizeof(T)) {
      return Status::DataLoss("truncated fixed-width field");
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace cmom
