#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cmom {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {
void Emit(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}
}  // namespace internal

}  // namespace cmom
