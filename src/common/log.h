// Minimal leveled logger.
//
// The middleware is a library, so logging defaults to warnings only and
// writes to stderr; tests and examples raise the level explicitly.  The
// logger is process-global because log configuration is inherently a
// process-wide concern.
#pragma once

#include <sstream>
#include <string>

namespace cmom {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
[[nodiscard]] LogLevel GetLogLevel();

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace cmom

#define CMOM_LOG(level)                                  \
  if (static_cast<int>(::cmom::LogLevel::level) <        \
      static_cast<int>(::cmom::GetLogLevel())) {         \
  } else                                                 \
    ::cmom::internal::LogLine(::cmom::LogLevel::level)
