#include "common/bytes.h"

#include "common/buffer_pool.h"

namespace cmom {

void ByteWriter::WriteVarU64(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::WriteBytes(std::span<const std::uint8_t> data) {
  WriteVarU64(data.size());
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::WriteString(std::string_view s) {
  WriteVarU64(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

Result<std::uint8_t> ByteReader::ReadU8() {
  return ReadLittleEndian<std::uint8_t>();
}
Result<std::uint16_t> ByteReader::ReadU16() {
  return ReadLittleEndian<std::uint16_t>();
}
Result<std::uint32_t> ByteReader::ReadU32() {
  return ReadLittleEndian<std::uint32_t>();
}
Result<std::uint64_t> ByteReader::ReadU64() {
  return ReadLittleEndian<std::uint64_t>();
}

Result<std::uint64_t> ByteReader::ReadVarU64() {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    std::uint8_t byte = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7E) != 0)) {
      return Status::DataLoss("varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::DataLoss("truncated varint");
}

Result<std::uint32_t> ByteReader::ReadVarU32() {
  auto v = ReadVarU64();
  if (!v.ok()) return v.status();
  if (v.value() > 0xFFFFFFFFull) {
    return Status::DataLoss("varint exceeds 32 bits");
  }
  return static_cast<std::uint32_t>(v.value());
}

Result<Bytes> ByteReader::ReadBytes() {
  auto len = ReadVarU64();
  if (!len.ok()) return len.status();
  if (remaining() < len.value()) {
    return Status::DataLoss("truncated byte string");
  }
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return out;
}

Result<Bytes> ByteReader::ReadBytesPooled() {
  auto len = ReadVarU64();
  if (!len.ok()) return len.status();
  if (remaining() < len.value()) {
    return Status::DataLoss("truncated byte string");
  }
  Bytes out = BufferPool::Acquire(len.value());
  out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return out;
}

Result<std::string> ByteReader::ReadString() {
  auto raw = ReadBytes();
  if (!raw.ok()) return raw.status();
  return std::string(raw.value().begin(), raw.value().end());
}

}  // namespace cmom
