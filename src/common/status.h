// Lightweight Status / Result types for expected, recoverable errors.
//
// Expected failures (bad configuration, decode errors, I/O failures)
// travel as values across module boundaries; exceptions are reserved for
// programming errors.  This keeps the middleware usable from code built
// with -fno-exceptions and makes failure paths explicit in signatures.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace cmom {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kDataLoss,
  kUnavailable,
  kInternal,
  // Backpressure: the target is alive but shedding load (outbox or wait
  // queue full).  Distinct from kUnavailable (peer gone) so senders can
  // throttle-and-retry instead of failing over.
  kOverloaded,
  // The server halted itself after a durable-write failure (fail-stop):
  // in-memory state may be ahead of the store, so it refuses all new
  // work until restarted from the last committed image.  Distinct from
  // kUnavailable so supervisors know a restart (not a retry) is needed.
  kFailStop,
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kFailStop: return "FAIL_STOP";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status{}; }
  [[nodiscard]] static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  [[nodiscard]] static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  [[nodiscard]] static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  [[nodiscard]] static Status DataLoss(std::string m) {
    return {StatusCode::kDataLoss, std::move(m)};
  }
  [[nodiscard]] static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  [[nodiscard]] static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }
  [[nodiscard]] static Status Overloaded(std::string m) {
    return {StatusCode::kOverloaded, std::move(m)};
  }
  [[nodiscard]] static Status FailStop(std::string m) {
    return {StatusCode::kFailStop, std::move(m)};
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (ok()) return "OK";
    return std::string(cmom::to_string(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    return os << s.to_string();
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::in_place_index<0>, std::move(value)) {}
  Result(Status status) : value_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(value_).ok() && "Result built from OK status");
  }

  [[nodiscard]] bool ok() const { return value_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(value_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(value_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(value_));
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<1>(value_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(value_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> value_;
};

#define CMOM_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::cmom::Status cmom_status_ = (expr);           \
    if (!cmom_status_.ok()) return cmom_status_;    \
  } while (false)

}  // namespace cmom
