// Power-of-two-bucketed histogram.
//
// Bucket b counts samples in [2^(b-1), 2^b), with bucket 0 counting
// zeros.  Record is O(1) via std::bit_width, cheap enough to live on
// the commit path and inside executor lane loops; summarized by
// momtool / tcpsmoke.  Lived in mom/agent_server.h historically; moved
// here so net/ (lane queue-depth and stall-time instrumentation) can
// use it without depending on mom/.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>

namespace cmom {

struct LogHistogram {
  static constexpr std::size_t kBuckets = 32;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void Record(std::uint64_t value) {
    // bit_width(v) is 1 + floor(log2 v), i.e. exactly the first b with
    // 2^b > v -- the historical linear bucket scan in O(1).
    const std::size_t b =
        std::min<std::size_t>(std::bit_width(value), kBuckets - 1);
    ++buckets[b];
    ++count;
    sum += value;
    if (value > max) max = value;
  }

  void MergeFrom(const LogHistogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
    count += other.count;
    sum += other.sum;
    if (other.max > max) max = other.max;
  }

  [[nodiscard]] double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Compact "mean/max + populated buckets" rendering for summaries.
  [[nodiscard]] std::string ToString() const {
    char head[96];
    std::snprintf(head, sizeof(head), "n=%llu mean=%.1f max=%llu",
                  static_cast<unsigned long long>(count), Mean(),
                  static_cast<unsigned long long>(max));
    std::string out = head;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets[b] == 0) continue;
      char cell[48];
      std::snprintf(cell, sizeof(cell), " <%llu:%llu",
                    static_cast<unsigned long long>(1ull << b),
                    static_cast<unsigned long long>(buckets[b]));
      out += cell;
    }
    return out;
  }
};

}  // namespace cmom
