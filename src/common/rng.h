// Deterministic pseudo-random number generation.
//
// Every randomized component (workload generators, fault injection,
// topology builders) takes an explicit seed so that any failing run can
// be replayed bit-for-bit.  SplitMix64 is small, fast and has no global
// state; std::mt19937 is deliberately avoided because its state makes
// snapshots and replay awkward.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace cmom {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {}

  // Uniform over the full 64-bit range (SplitMix64 step).
  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).  bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % bound) - 1;
    std::uint64_t v = NextU64();
    while (v > limit) v = NextU64();
    return v % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool NextBool(double probability_true) {
    return NextDouble() < probability_true;
  }

  // Zipf-distributed rank in [0, n) with exponent alpha; used by the
  // random-traffic workload to model skewed destination popularity.
  std::size_t NextZipf(std::size_t n, double alpha);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = NextBelow(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Derive an independent child generator (for per-component streams).
  [[nodiscard]] Rng Fork() { return Rng(NextU64()); }

 private:
  std::uint64_t state_;
};

inline std::size_t Rng::NextZipf(std::size_t n, double alpha) {
  assert(n > 0);
  // Inverse-CDF on the harmonic weights; O(n) but n is small (servers).
  double total = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i), alpha);
  }
  double target = NextDouble() * total;
  double cumulative = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    cumulative += 1.0 / std::pow(static_cast<double>(i), alpha);
    if (cumulative >= target) return i - 1;
  }
  return n - 1;
}

}  // namespace cmom
