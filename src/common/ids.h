// Strong identifier types used throughout the middleware.
//
// The paper (Section 5) gives every agent server two identities: a
// *global* ServerId, unique across the whole MOM and used by
// application-level agents, and a *domain-local* server id used by the
// causal-ordering machinery of each domain the server belongs to.  We
// mirror that split here with distinct types so the two id spaces cannot
// be confused at compile time.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace cmom {

// Tagged integral id.  Distinct Tag types produce distinct, non-
// convertible id types with value semantics and total ordering.
template <typename Tag, typename Rep = std::uint32_t>
class Id {
 public:
  using rep_type = Rep;

  constexpr Id() = default;
  constexpr explicit Id(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

 private:
  Rep value_ = 0;
};

// Global identity of an agent server (unique across the whole MOM).
struct ServerIdTag {};
using ServerId = Id<ServerIdTag, std::uint16_t>;

// Identity of a causality domain.
struct DomainIdTag {};
using DomainId = Id<DomainIdTag, std::uint16_t>;

// Position of a server inside one domain (index into that domain's
// matrix clock).  Only meaningful relative to a DomainId.
struct DomainServerIdTag {};
using DomainServerId = Id<DomainServerIdTag, std::uint16_t>;

// Identity of an agent: the server that hosts it plus a server-local
// sequence number.  Agents are location-dependent, as in AAA.
struct AgentId {
  ServerId server;
  std::uint32_t local = 0;

  friend constexpr bool operator==(const AgentId&, const AgentId&) = default;
  friend constexpr auto operator<=>(const AgentId&, const AgentId&) = default;

  friend std::ostream& operator<<(std::ostream& os, const AgentId& id) {
    return os << "a" << id.server << "." << id.local;
  }
};

// Globally unique message identity: sending server plus a per-sender
// sequence number.  Used by the trace recorder and the delivery dedup.
struct MessageId {
  ServerId origin;
  std::uint64_t seq = 0;

  friend constexpr bool operator==(const MessageId&, const MessageId&) = default;
  friend constexpr auto operator<=>(const MessageId&, const MessageId&) = default;

  friend std::ostream& operator<<(std::ostream& os, const MessageId& id) {
    return os << "m" << id.origin << ":" << id.seq;
  }
};

[[nodiscard]] inline std::string to_string(ServerId id) {
  return "S" + std::to_string(id.value());
}
[[nodiscard]] inline std::string to_string(DomainId id) {
  return "D" + std::to_string(id.value());
}

}  // namespace cmom

namespace std {

template <typename Tag, typename Rep>
struct hash<cmom::Id<Tag, Rep>> {
  size_t operator()(cmom::Id<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

template <>
struct hash<cmom::AgentId> {
  size_t operator()(const cmom::AgentId& id) const noexcept {
    return (std::hash<std::uint16_t>{}(id.server.value()) * 1000003u) ^
           std::hash<std::uint32_t>{}(id.local);
  }
};

template <>
struct hash<cmom::MessageId> {
  size_t operator()(const cmom::MessageId& id) const noexcept {
    return (std::hash<std::uint16_t>{}(id.origin.value()) * 1000003u) ^
           std::hash<std::uint64_t>{}(id.seq);
  }
};

}  // namespace std
