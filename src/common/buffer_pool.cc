#include "common/buffer_pool.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

namespace cmom {

namespace {

// Freelist bounds: enough depth to cover a full engine batch in flight
// per thread, and a capacity cap so one giant payload doesn't pin
// megabytes in every thread's list.
constexpr std::size_t kMaxFreeBuffers = 64;
constexpr std::size_t kMaxKeepCapacity = 256 * 1024;

// Overflow shelf bounds.  Batch size trades lock frequency against
// freelist headroom: a pure producer takes the lock once per
// kShelfBatch messages, not once per message.
constexpr std::size_t kMaxShelfBuffers = 1024;
constexpr std::size_t kShelfBatch = 16;

std::atomic<bool> g_enabled{true};

std::mutex g_shelf_mutex;
std::vector<Bytes>& Shelf() {
  // Leaked on purpose (like the counter nodes): thread caches may
  // deposit during static destruction of other translation units.
  static std::vector<Bytes>* shelf = new std::vector<Bytes>;
  return *shelf;
}
// Approximate mirror of Shelf().size() so empty-shelf acquires and
// full-shelf releases skip the lock entirely.
std::atomic<std::size_t> g_shelf_size{0};

// Per-thread counters on a global intrusive list.  Nodes are leaked on
// purpose: Totals() must keep seeing the contributions of exited
// threads (bench worker pools come and go between snapshots).
struct ThreadCounters {
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> releases{0};
  std::atomic<std::uint64_t> discards{0};
  std::atomic<std::uint64_t> shelf_deposits{0};
  std::atomic<std::uint64_t> shelf_refills{0};
  ThreadCounters* next = nullptr;
};

std::atomic<ThreadCounters*> g_counters_head{nullptr};

struct ThreadCache {
  std::vector<Bytes> free_list;
  ThreadCounters* counters;

  ThreadCache() : counters(new ThreadCounters) {
    ThreadCounters* head = g_counters_head.load(std::memory_order_relaxed);
    do {
      counters->next = head;
    } while (!g_counters_head.compare_exchange_weak(
        head, counters, std::memory_order_release,
        std::memory_order_relaxed));
  }
};

ThreadCache& Cache() {
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace

Bytes BufferPool::Acquire(std::size_t capacity_hint) {
  ThreadCache& cache = Cache();
  cache.counters->acquires.fetch_add(1, std::memory_order_relaxed);
  if (g_enabled.load(std::memory_order_relaxed) && cache.free_list.empty() &&
      g_shelf_size.load(std::memory_order_relaxed) > 0) {
    std::lock_guard lock(g_shelf_mutex);
    std::vector<Bytes>& shelf = Shelf();
    const std::size_t take = std::min(kShelfBatch, shelf.size());
    for (std::size_t i = 0; i < take; ++i) {
      cache.free_list.push_back(std::move(shelf.back()));
      shelf.pop_back();
    }
    g_shelf_size.store(shelf.size(), std::memory_order_relaxed);
    cache.counters->shelf_refills.fetch_add(take, std::memory_order_relaxed);
  }
  if (g_enabled.load(std::memory_order_relaxed) && !cache.free_list.empty()) {
    Bytes out = std::move(cache.free_list.back());
    cache.free_list.pop_back();
    cache.counters->pool_hits.fetch_add(1, std::memory_order_relaxed);
    out.clear();
    out.reserve(capacity_hint);
    return out;
  }
  Bytes out;
  out.reserve(capacity_hint);
  return out;
}

void BufferPool::Release(Bytes&& buffer) {
  ThreadCache& cache = Cache();
  cache.counters->releases.fetch_add(1, std::memory_order_relaxed);
  if (!g_enabled.load(std::memory_order_relaxed) || buffer.capacity() == 0 ||
      buffer.capacity() > kMaxKeepCapacity) {
    cache.counters->discards.fetch_add(1, std::memory_order_relaxed);
    const Bytes dropped = std::move(buffer);
    return;
  }
  if (cache.free_list.size() >= kMaxFreeBuffers) {
    // Consumer-heavy thread: move a batch to the shelf so producer
    // threads can refill from it.  Drop only when the shelf is full
    // too (the whole process is over-buffered at that point).
    if (g_shelf_size.load(std::memory_order_relaxed) >= kMaxShelfBuffers) {
      cache.counters->discards.fetch_add(1, std::memory_order_relaxed);
      const Bytes dropped = std::move(buffer);
      return;
    }
    std::size_t moved = 0;
    {
      std::lock_guard lock(g_shelf_mutex);
      std::vector<Bytes>& shelf = Shelf();
      while (moved < kShelfBatch && shelf.size() < kMaxShelfBuffers &&
             !cache.free_list.empty()) {
        shelf.push_back(std::move(cache.free_list.back()));
        cache.free_list.pop_back();
        ++moved;
      }
      g_shelf_size.store(shelf.size(), std::memory_order_relaxed);
    }
    cache.counters->shelf_deposits.fetch_add(moved, std::memory_order_relaxed);
  }
  buffer.clear();
  cache.free_list.push_back(std::move(buffer));
}

BufferPool::Counters BufferPool::Totals() {
  Counters out;
  for (ThreadCounters* node =
           g_counters_head.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    out.acquires += node->acquires.load(std::memory_order_relaxed);
    out.pool_hits += node->pool_hits.load(std::memory_order_relaxed);
    out.releases += node->releases.load(std::memory_order_relaxed);
    out.discards += node->discards.load(std::memory_order_relaxed);
    out.shelf_deposits +=
        node->shelf_deposits.load(std::memory_order_relaxed);
    out.shelf_refills += node->shelf_refills.load(std::memory_order_relaxed);
  }
  return out;
}

void BufferPool::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool BufferPool::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace cmom
