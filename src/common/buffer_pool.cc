#include "common/buffer_pool.h"

#include <atomic>
#include <utility>
#include <vector>

namespace cmom {

namespace {

// Freelist bounds: enough depth to cover a full engine batch in flight
// per thread, and a capacity cap so one giant payload doesn't pin
// megabytes in every thread's list.
constexpr std::size_t kMaxFreeBuffers = 64;
constexpr std::size_t kMaxKeepCapacity = 256 * 1024;

std::atomic<bool> g_enabled{true};

// Per-thread counters on a global intrusive list.  Nodes are leaked on
// purpose: Totals() must keep seeing the contributions of exited
// threads (bench worker pools come and go between snapshots).
struct ThreadCounters {
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> releases{0};
  std::atomic<std::uint64_t> discards{0};
  ThreadCounters* next = nullptr;
};

std::atomic<ThreadCounters*> g_counters_head{nullptr};

struct ThreadCache {
  std::vector<Bytes> free_list;
  ThreadCounters* counters;

  ThreadCache() : counters(new ThreadCounters) {
    ThreadCounters* head = g_counters_head.load(std::memory_order_relaxed);
    do {
      counters->next = head;
    } while (!g_counters_head.compare_exchange_weak(
        head, counters, std::memory_order_release,
        std::memory_order_relaxed));
  }
};

ThreadCache& Cache() {
  thread_local ThreadCache cache;
  return cache;
}

}  // namespace

Bytes BufferPool::Acquire(std::size_t capacity_hint) {
  ThreadCache& cache = Cache();
  cache.counters->acquires.fetch_add(1, std::memory_order_relaxed);
  if (g_enabled.load(std::memory_order_relaxed) && !cache.free_list.empty()) {
    Bytes out = std::move(cache.free_list.back());
    cache.free_list.pop_back();
    cache.counters->pool_hits.fetch_add(1, std::memory_order_relaxed);
    out.clear();
    out.reserve(capacity_hint);
    return out;
  }
  Bytes out;
  out.reserve(capacity_hint);
  return out;
}

void BufferPool::Release(Bytes&& buffer) {
  ThreadCache& cache = Cache();
  cache.counters->releases.fetch_add(1, std::memory_order_relaxed);
  if (!g_enabled.load(std::memory_order_relaxed) || buffer.capacity() == 0 ||
      buffer.capacity() > kMaxKeepCapacity ||
      cache.free_list.size() >= kMaxFreeBuffers) {
    cache.counters->discards.fetch_add(1, std::memory_order_relaxed);
    const Bytes dropped = std::move(buffer);
    return;
  }
  buffer.clear();
  cache.free_list.push_back(std::move(buffer));
}

BufferPool::Counters BufferPool::Totals() {
  Counters out;
  for (ThreadCounters* node =
           g_counters_head.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    out.acquires += node->acquires.load(std::memory_order_relaxed);
    out.pool_hits += node->pool_hits.load(std::memory_order_relaxed);
    out.releases += node->releases.load(std::memory_order_relaxed);
    out.discards += node->discards.load(std::memory_order_relaxed);
  }
  return out;
}

void BufferPool::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool BufferPool::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace cmom
