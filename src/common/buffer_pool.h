// Pooled arena for frame buffers and decoded payloads.
//
// Every message the bus moves costs a handful of byte-vector
// allocations on the hot path: the serialized frame, the decoded
// payload, the re-encoded store entries.  Under a multi-worker engine
// those malloc/free pairs contend on the global allocator and dominate
// the per-message constant factor the paper's throughput argument
// cares about.  This pool recycles Bytes buffers through per-thread
// freelists: Acquire/Release never take a lock, and a steady-state
// pipeline (transport thread decodes and re-acks, shard workers encode
// agent images and release consumed payloads) runs with zero heap
// allocations per frame.
//
// Lifetime rule: a pooled buffer is owned like any other Bytes value;
// Release hands it back for reuse, so the caller must be the last
// owner.  Frame buffers are released by the receiving decode, payloads
// after their reaction's group commit -- never earlier, because the
// store transaction that makes the reaction durable may still read
// them.
//
// Buffers migrate between threads through a global overflow shelf:
// when a thread's freelist caps out, a batch of buffers moves onto the
// shelf under one lock, and a thread whose freelist runs dry refills a
// batch from it.  That closes the producer/consumer split of a
// pipelined engine -- a pure-producer feeder thread (acquire-only)
// recycles what the consuming engine shard releases instead of hitting
// the heap on every message, while the steady same-thread hot loops
// still never touch the lock.  Counters are global (per-thread atomics
// summed on read) so benchmarks can report heap allocations per
// message: heap allocs = acquires - pool_hits.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace cmom {

class BufferPool {
 public:
  struct Counters {
    std::uint64_t acquires = 0;   // buffers handed out
    std::uint64_t pool_hits = 0;  // ... of which reused a freed buffer
    std::uint64_t releases = 0;   // buffers handed back
    std::uint64_t discards = 0;   // ... of which were dropped (shelf and
                                  // list full, oversized, or pool disabled)
    std::uint64_t shelf_deposits = 0;  // buffers batch-moved to the shelf
    std::uint64_t shelf_refills = 0;   // buffers batch-taken from it

    [[nodiscard]] std::uint64_t heap_allocations() const {
      return acquires - pool_hits;
    }
  };

  // A cleared buffer with at least `capacity_hint` reserved, reusing a
  // freed one when the calling thread's freelist has any.
  [[nodiscard]] static Bytes Acquire(std::size_t capacity_hint);

  // Returns a buffer to the calling thread's freelist.  Safe for any
  // Bytes value, pooled or not.
  static void Release(Bytes&& buffer);

  // Cumulative counters over all threads (including exited ones).
  [[nodiscard]] static Counters Totals();

  // Disabling turns Acquire/Release into plain allocate/free (counters
  // still tick) -- the bench's arena-off baseline and the recovery
  // equivalence tests use this.
  static void SetEnabled(bool enabled);
  [[nodiscard]] static bool enabled();
};

// Convenience for encode paths: a ByteWriter over a pooled buffer.
// The finished frame (std::move(writer).Take()) travels through the
// transport and is released by the receiving decode.
[[nodiscard]] inline ByteWriter PooledWriter(std::size_t capacity_hint) {
  return ByteWriter(BufferPool::Acquire(capacity_hint));
}

}  // namespace cmom
