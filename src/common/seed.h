// Seed plumbing for randomized soak / chaos runs.
//
// Every chaos schedule and fault stream derives from one seed; a CI
// failure is replayed locally by exporting the seed the job logged:
//
//   CMOM_SEED=123456 ctest -L chaos
//
// SeedFromEnv returns the CMOM_SEED override when set (any non-numeric
// value is ignored with a warning) and the test's baked-in fallback
// otherwise, printing whichever it chose so the seed is always in the
// failure log.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cmom {

inline std::uint64_t SeedFromEnv(std::uint64_t fallback, const char* who) {
  std::uint64_t seed = fallback;
  const char* override_text = std::getenv("CMOM_SEED");
  if (override_text != nullptr && *override_text != '\0') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(override_text, &end, 10);
    if (end != nullptr && *end == '\0') {
      seed = static_cast<std::uint64_t>(parsed);
    } else {
      std::fprintf(stderr, "[%s] ignoring malformed CMOM_SEED=\"%s\"\n", who,
                   override_text);
    }
  }
  std::fprintf(stderr, "[%s] seed=%llu (replay: CMOM_SEED=%llu)\n", who,
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(seed));
  return seed;
}

}  // namespace cmom
