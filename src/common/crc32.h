// CRC-32 (IEEE 802.3 polynomial), used by the file store to detect
// torn or corrupted WAL records after a crash.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace cmom {

namespace internal {
constexpr std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = MakeCrc32Table();
}  // namespace internal

[[nodiscard]] inline std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc = internal::kCrc32Table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace cmom
