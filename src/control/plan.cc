#include "control/plan.h"

#include <algorithm>
#include <set>

#include "domains/deployment.h"

namespace cmom::control {

namespace {

const domains::DomainSpec* FindDomain(const domains::MomConfig& config,
                                      DomainId id) {
  for (const domains::DomainSpec& spec : config.domains) {
    if (spec.id == id) return &spec;
  }
  return nullptr;
}

domains::DomainSpec* FindDomain(domains::MomConfig& config, DomainId id) {
  for (domains::DomainSpec& spec : config.domains) {
    if (spec.id == id) return &spec;
  }
  return nullptr;
}

bool IsMember(const domains::DomainSpec& spec, ServerId server) {
  return std::find(spec.members.begin(), spec.members.end(), server) !=
         spec.members.end();
}

}  // namespace

Result<ReconfigPlan> ReconfigPlan::Build(std::uint64_t from_epoch,
                                         domains::MomConfig old_config,
                                         domains::MomConfig new_config) {
  if (new_config.stamp_mode != old_config.stamp_mode) {
    return Status::InvalidArgument(
        "stamp mode cannot change across an epoch");
  }
  // A domain surviving into the new epoch must keep its causal core:
  // the cutover remaps durable core state within one representation, it
  // does not translate between them.  (Domains NEW in this epoch may
  // use any kind -- they start from fresh cores.)
  for (const domains::DomainSpec& spec : new_config.domains) {
    bool survives = false;
    for (const domains::DomainSpec& old_spec : old_config.domains) {
      if (old_spec.id == spec.id) {
        survives = true;
        break;
      }
    }
    if (survives && new_config.CoreFor(spec.id) != old_config.CoreFor(spec.id)) {
      return Status::InvalidArgument(
          "causal core of " + to_string(spec.id) +
          " cannot change across an epoch");
    }
  }
  // The full boot-time validation -- well-formedness, routable server
  // graph, and the Section 4.3 acyclicity precondition.  Rejecting here
  // is what keeps a bad proposal from ever touching a store.
  auto deployment = domains::Deployment::Create(new_config);
  if (!deployment.ok()) return deployment.status();

  ReconfigPlan plan;
  plan.from_epoch = from_epoch;
  plan.to_epoch = from_epoch + 1;
  plan.old_config = std::move(old_config);
  plan.new_config = std::move(new_config);
  for (const domains::DomainSpec& spec : plan.new_config.domains) {
    DomainRemap remap;
    remap.id = spec.id;
    for (std::size_t i = 0; i < plan.old_config.domains.size(); ++i) {
      if (plan.old_config.domains[i].id == spec.id) {
        remap.old_index = i;
        break;
      }
    }
    if (remap.old_index.has_value()) {
      const domains::DomainSpec& old_spec =
          plan.old_config.domains[*remap.old_index];
      remap.old_of_new.reserve(spec.members.size());
      for (ServerId member : spec.members) {
        auto it = std::find(old_spec.members.begin(), old_spec.members.end(),
                            member);
        if (it == old_spec.members.end()) {
          remap.old_of_new.emplace_back(std::nullopt);
        } else {
          remap.old_of_new.emplace_back(DomainServerId(
              static_cast<std::uint16_t>(it - old_spec.members.begin())));
        }
      }
    }
    plan.remaps.push_back(std::move(remap));
  }
  return plan;
}

std::vector<ServerId> ReconfigPlan::AllServers() const {
  std::set<ServerId> all(old_config.servers.begin(), old_config.servers.end());
  all.insert(new_config.servers.begin(), new_config.servers.end());
  return {all.begin(), all.end()};
}

Result<domains::MomConfig> AddServerToDomain(const domains::MomConfig& config,
                                             ServerId server, DomainId domain) {
  domains::MomConfig out = config;
  domains::DomainSpec* spec = FindDomain(out, domain);
  if (spec == nullptr) {
    return Status::NotFound("no domain " + to_string(domain));
  }
  if (IsMember(*spec, server)) {
    return Status::InvalidArgument(to_string(server) + " already in " +
                                   to_string(domain));
  }
  spec->members.push_back(server);
  if (std::find(out.servers.begin(), out.servers.end(), server) ==
      out.servers.end()) {
    out.servers.push_back(server);
  }
  return out;
}

Result<domains::MomConfig> RemoveServer(const domains::MomConfig& config,
                                        ServerId server) {
  domains::MomConfig out = config;
  bool found = false;
  for (domains::DomainSpec& spec : out.domains) {
    auto it = std::find(spec.members.begin(), spec.members.end(), server);
    if (it == spec.members.end()) continue;
    found = true;
    spec.members.erase(it);
    if (spec.members.empty()) {
      return Status::FailedPrecondition("removing " + to_string(server) +
                                        " empties " + to_string(spec.id));
    }
  }
  if (!found) {
    return Status::NotFound(to_string(server) + " is in no domain");
  }
  out.servers.erase(
      std::remove(out.servers.begin(), out.servers.end(), server),
      out.servers.end());
  return out;
}

Result<domains::MomConfig> SplitDomain(const domains::MomConfig& config,
                                       DomainId domain,
                                       const domains::TrafficProfile& traffic,
                                       DomainId new_id,
                                       std::size_t max_domain_size) {
  const domains::DomainSpec* target = FindDomain(config, domain);
  if (target == nullptr) {
    return Status::NotFound("no domain " + to_string(domain));
  }
  if (traffic.server_count() != target->members.size()) {
    return Status::InvalidArgument(
        "traffic profile dimension does not match domain size");
  }
  // The splitter works over dense ids 0..n-1 = positions in the member
  // list; its output clusters (with their connecting routers) map back
  // to real ServerIds one-to-one.
  domains::SplitterOptions options;
  options.max_domain_size = max_domain_size;
  options.stamp_mode = config.stamp_mode;
  auto sub = domains::DomainSplitter::Split(traffic, options);
  if (!sub.ok()) return sub.status();
  if (sub.value().domains.size() < 2) {
    return Status::FailedPrecondition(
        "split produced a single domain; lower max_domain_size");
  }

  domains::MomConfig out = config;
  std::vector<domains::DomainSpec> parts;
  std::uint16_t next_id = new_id.value();
  for (std::size_t d = 0; d < sub.value().domains.size(); ++d) {
    domains::DomainSpec part;
    part.id = d == 0 ? domain : DomainId(next_id++);
    if (d != 0 && FindDomain(config, part.id) != nullptr) {
      return Status::InvalidArgument("split id " + to_string(part.id) +
                                     " already taken");
    }
    for (ServerId dense : sub.value().domains[d].members) {
      part.members.push_back(target->members[dense.value()]);
    }
    parts.push_back(std::move(part));
  }
  // The split-off halves inherit the split domain's effective causal
  // core: splitting must never silently change the causal algorithm a
  // member runs.  (An override equal to the global default would be
  // redundant, so only a differing kind is recorded.)
  const clocks::CausalCoreKind kind = config.CoreFor(domain);
  if (kind != out.causal_core) {
    for (std::size_t d = 1; d < parts.size(); ++d) {
      out.causal_core_overrides.emplace_back(parts[d].id, kind);
    }
  }
  auto it = std::find_if(
      out.domains.begin(), out.domains.end(),
      [&](const domains::DomainSpec& spec) { return spec.id == domain; });
  it = out.domains.erase(it);
  out.domains.insert(it, parts.begin(), parts.end());
  return out;
}

Result<domains::MomConfig> MergeDomains(const domains::MomConfig& config,
                                        DomainId a, DomainId b) {
  if (a == b) return Status::InvalidArgument("cannot merge a domain into itself");
  domains::MomConfig out = config;
  domains::DomainSpec* into = FindDomain(out, a);
  domains::DomainSpec* from = FindDomain(out, b);
  if (into == nullptr || from == nullptr) {
    return Status::NotFound("merge needs both " + to_string(a) + " and " +
                            to_string(b));
  }
  if (config.CoreFor(a) != config.CoreFor(b)) {
    return Status::FailedPrecondition(
        "cannot merge " + to_string(b) + " (" +
        std::string(clocks::CausalCoreKindName(config.CoreFor(b))) +
        " core) into " + to_string(a) + " (" +
        std::string(clocks::CausalCoreKindName(config.CoreFor(a))) +
        " core)");
  }
  for (ServerId member : from->members) {
    if (!IsMember(*into, member)) into->members.push_back(member);
  }
  out.domains.erase(std::find_if(
      out.domains.begin(), out.domains.end(),
      [&](const domains::DomainSpec& spec) { return spec.id == b; }));
  // Drop the vanished domain's core override, if any: Deployment
  // validation rejects overrides naming unknown domains.
  std::erase_if(out.causal_core_overrides,
                [&](const auto& entry) { return entry.first == b; });
  return out;
}

Result<domains::MomConfig> PromoteRouter(const domains::MomConfig& config,
                                         ServerId server, DomainId domain) {
  bool member_somewhere = false;
  for (const domains::DomainSpec& spec : config.domains) {
    if (IsMember(spec, server)) {
      member_somewhere = true;
      break;
    }
  }
  if (!member_somewhere) {
    return Status::FailedPrecondition(
        to_string(server) + " must already serve a domain to become a router");
  }
  return AddServerToDomain(config, server, domain);
}

}  // namespace cmom::control
