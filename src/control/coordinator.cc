#include "control/coordinator.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "clocks/causal_clock.h"
#include "clocks/causal_core.h"
#include "domains/config_io.h"

namespace cmom::control {

namespace {

// Store schema literals.  agent_server.cc owns the schema; the control
// plane mirrors the two pieces it rewrites (clock images, queue
// emptiness checks) byte-for-byte.
constexpr std::string_view kClockKeyPrefix = "clk/";
constexpr std::string_view kDrainedPrefixes[] = {"qout/", "qin/", "hold/"};

std::string ClockKey(std::size_t deployment_index) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%04llx",
                static_cast<unsigned long long>(deployment_index));
  return std::string(kClockKeyPrefix) + buf;
}

Result<std::uint64_t> ParseHexSuffix(std::string_view key,
                                     std::string_view prefix) {
  std::uint64_t value = 0;
  std::string_view digits = key.substr(prefix.size());
  if (digits.empty()) return Status::DataLoss("empty store key suffix");
  for (char c : digits) {
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return Status::DataLoss("bad hex digit in store key");
    }
    value = (value << 4) | nibble;
  }
  return value;
}

bool Contains(const std::vector<ServerId>& servers, ServerId id) {
  return std::find(servers.begin(), servers.end(), id) != servers.end();
}

}  // namespace

Status Coordinator::Reconfigure(const ReconfigPlan& plan) {
  CMOM_RETURN_IF_ERROR(Propose(plan));
  if (Status quiesced = Quiesce(); !quiesced.ok()) {
    // The cluster never reached the cutover precondition; undo the
    // proposal so the next attempt starts clean at from_epoch.
    (void)Abort(plan);
    return quiesced;
  }
  for (ServerId id : plan.AllServers()) {
    CMOM_RETURN_IF_ERROR(CutoverOne(plan, id));
  }
  return Resume(plan);
}

Status Coordinator::Propose(const ReconfigPlan& plan) {
  const EpochRecord pending{plan.to_epoch,
                            domains::FormatMomConfig(plan.new_config),
                            domains::FormatMomConfig(plan.old_config)};
  const Bytes encoded = EncodeEpochRecord(pending);
  for (ServerId id : plan.AllServers()) {
    mom::Store* store = host_->StoreOf(id);
    if (store == nullptr) {
      return Status::NotFound("no store for " + to_string(id));
    }
    auto current = ReadEpochRecord(*store, kEpochCurrentKey);
    if (!current.ok()) return current.status();
    if (current.value().has_value()) {
      if (current.value()->epoch != plan.from_epoch) {
        return Status::FailedPrecondition(
            to_string(id) + " is at epoch " +
            std::to_string(current.value()->epoch) + ", plan expects " +
            std::to_string(plan.from_epoch));
      }
    } else if (plan.from_epoch != 0 &&
               Contains(plan.old_config.servers, id)) {
      // Stores from before the control plane are implicitly at epoch 0;
      // only a server joining in this very transition may lack a record
      // at a later epoch.
      return Status::FailedPrecondition(
          to_string(id) + " has no epoch record but the plan starts at " +
          std::to_string(plan.from_epoch));
    }
    auto stale = ReadEpochRecord(*store, kEpochPendingKey);
    if (!stale.ok()) return stale.status();
    if (stale.value().has_value() && !(*stale.value() == pending)) {
      return Status::FailedPrecondition(
          to_string(id) + " already has a different pending proposal");
    }
    CMOM_RETURN_IF_ERROR(WriteControlRecord(id, kEpochPendingKey, encoded));
  }
  return Status::Ok();
}

Status Coordinator::Quiesce() {
  fence_.RaiseAll();
  return fence_.AwaitDrained(options_.quiesce_timeout_ms);
}

Status Coordinator::CutoverOne(const ReconfigPlan& plan, ServerId id) {
  if (host_->ServerOf(id) != nullptr) {
    CMOM_RETURN_IF_ERROR(host_->StopServer(id));
  }
  mom::Store* store = host_->StoreOf(id);
  if (store == nullptr) {
    return Status::NotFound("no store for " + to_string(id));
  }
  return CutoverStore(*store, id, plan);
}

Status Coordinator::Resume(const ReconfigPlan& plan) {
  for (ServerId id : plan.new_config.servers) {
    if (host_->ServerOf(id) != nullptr) continue;  // already running
    CMOM_RETURN_IF_ERROR(host_->StartServer(id, plan.to_epoch,
                                            plan.new_config));
  }
  return Status::Ok();
}

Status Coordinator::Abort(const ReconfigPlan& plan) {
  Status first = Status::Ok();
  for (ServerId id : plan.AllServers()) {
    Status status = WriteControlRecord(id, kEpochPendingKey, std::nullopt);
    if (!status.ok() && first.ok()) first = status;
  }
  fence_.LowerAll();
  return first;
}

Status Coordinator::Recover() {
  struct StoreState {
    ServerId id;
    std::optional<EpochRecord> current;
    std::optional<EpochRecord> pending;
  };
  std::vector<StoreState> states;
  for (ServerId id : host_->KnownServers()) {
    mom::Store* store = host_->StoreOf(id);
    if (store == nullptr) continue;
    StoreState state{id, {}, {}};
    auto current = ReadEpochRecord(*store, kEpochCurrentKey);
    if (!current.ok()) return current.status();
    state.current = std::move(current).value();
    auto pending = ReadEpochRecord(*store, kEpochPendingKey);
    if (!pending.ok()) return pending.status();
    state.pending = std::move(pending).value();
    states.push_back(std::move(state));
  }

  const EpochRecord* proposal = nullptr;
  for (const StoreState& state : states) {
    if (!state.pending.has_value()) continue;
    if (proposal != nullptr && !(*proposal == *state.pending)) {
      return Status::DataLoss("conflicting pending proposals across stores");
    }
    proposal = &*state.pending;
  }

  if (proposal == nullptr) {
    // Healthy cluster (or a crash outside any reconfiguration): just
    // restart whatever is down at its recorded epoch.
    for (const StoreState& state : states) {
      if (host_->ServerOf(state.id) != nullptr) continue;
      if (!state.current.has_value()) continue;  // pre-control store
      auto config = domains::ParseMomConfig(state.current->config_text);
      if (!config.ok()) return config.status();
      if (!Contains(config.value().servers, state.id)) continue;  // removed
      CMOM_RETURN_IF_ERROR(host_->StartServer(state.id, state.current->epoch,
                                              config.value()));
    }
    return Status::Ok();
  }

  // Rebuild the plan the crashed coordinator was executing.  The
  // pending record carries both configuration texts precisely so this
  // works even when no store still holds the old epoch/current record.
  auto new_config = domains::ParseMomConfig(proposal->config_text);
  if (!new_config.ok()) return new_config.status();
  auto old_config = domains::ParseMomConfig(proposal->prev_config_text);
  if (!old_config.ok()) return old_config.status();
  auto plan = ReconfigPlan::Build(proposal->epoch - 1,
                                  std::move(old_config).value(),
                                  std::move(new_config).value());
  if (!plan.ok()) return plan.status();

  bool any_cut_over = false;
  for (const StoreState& state : states) {
    if (state.current.has_value() &&
        state.current->epoch == plan.value().to_epoch) {
      any_cut_over = true;
      break;
    }
  }

  if (!any_cut_over) {
    // The crash hit propose or quiesce: no store advanced, so the old
    // epoch is still fully intact.  Roll BACK: delete the proposal,
    // lift any fences, restart old-config servers that are down.
    CMOM_RETURN_IF_ERROR(Abort(plan.value()));
    for (ServerId id : plan.value().old_config.servers) {
      if (host_->ServerOf(id) != nullptr) continue;
      CMOM_RETURN_IF_ERROR(host_->StartServer(id, plan.value().from_epoch,
                                              plan.value().old_config));
    }
    return Status::Ok();
  }

  // At least one store committed the new epoch, which proves the
  // cluster-wide drain happened and was durable (cutover refuses
  // non-drained stores).  Roll FORWARD: finish the remaining cutovers
  // cold and resume everyone under the new configuration.
  for (ServerId id : plan.value().AllServers()) {
    CMOM_RETURN_IF_ERROR(CutoverOne(plan.value(), id));
  }
  return Resume(plan.value());
}

Status Coordinator::CutoverStore(mom::Store& store, ServerId self,
                                 const ReconfigPlan& plan) {
  auto record = ReadEpochRecord(store, kEpochCurrentKey);
  if (!record.ok()) return record.status();
  // A record-less store is implicitly at epoch 0 -- unless this server
  // is joining in this very transition, in which case its fresh store
  // is considered to be at from_epoch (the same allowance Propose
  // makes; a joiner's first epoch/current record is the one this
  // cutover writes).
  const bool joining = !record.value().has_value() &&
                       !Contains(plan.old_config.servers, self);
  const std::uint64_t current =
      record.value().has_value() ? record.value()->epoch
      : joining                  ? plan.from_epoch
                                 : 0;
  if (current == plan.to_epoch) return Status::Ok();  // idempotent
  if (current != plan.from_epoch) {
    return Status::FailedPrecondition(
        to_string(self) + "'s store is at epoch " + std::to_string(current) +
        ", plan expects " + std::to_string(plan.from_epoch));
  }
  // The correctness precondition: the store must be drained.  Any
  // surviving queue entry would be stamped under the OLD coordinates
  // and replayed against the NEW clocks after recovery.
  for (std::string_view prefix : kDrainedPrefixes) {
    if (!store.Keys(prefix).empty()) {
      return Status::FailedPrecondition(
          to_string(self) + "'s store is not drained (" +
          std::string(prefix) + " keys remain); quiesce first");
    }
  }

  // Decode the old causal-core images (any kind), indexed by old
  // deployment index (= position in old_config.domains;
  // Deployment::Create resolves domains in configuration order).
  std::map<std::size_t, std::unique_ptr<clocks::CausalCore>> old_cores;
  std::vector<std::string> old_keys = store.Keys(kClockKeyPrefix);
  for (const std::string& key : old_keys) {
    auto index = ParseHexSuffix(key, kClockKeyPrefix);
    if (!index.ok()) return index.status();
    auto blob = store.Get(key);
    if (!blob.has_value()) {
      return Status::DataLoss("clock key vanished mid-read: " + key);
    }
    ByteReader in(*blob);
    auto core = clocks::DecodeCausalCoreState(in);
    if (!core.ok()) return core.status();
    old_cores.emplace(index.value(), std::move(core).value());
  }

  // Stage the whole rewrite; ONE commit applies it atomically.
  for (const std::string& key : old_keys) store.Delete(key);
  for (std::size_t j = 0; j < plan.new_config.domains.size(); ++j) {
    const domains::DomainSpec& spec = plan.new_config.domains[j];
    auto member = std::find(spec.members.begin(), spec.members.end(), self);
    if (member == spec.members.end()) continue;
    const DomainServerId new_local(
        static_cast<std::uint16_t>(member - spec.members.begin()));
    const DomainRemap& remap = plan.remaps[j];
    const clocks::CausalCoreKind kind = plan.new_config.CoreFor(spec.id);
    std::unique_ptr<clocks::CausalCore> core;
    if (remap.old_index.has_value() &&
        old_cores.count(*remap.old_index) != 0) {
      // Surviving domain this server was already in: inherit, with
      // members permuted through the plan's coordinate map.  The plan
      // guarantees the kind did not change across the epoch.
      const clocks::CausalCore& old_core = *old_cores.at(*remap.old_index);
      if (old_core.kind() != kind) {
        return Status::FailedPrecondition(
            to_string(self) + "'s store holds a " +
            std::string(clocks::CausalCoreKindName(old_core.kind())) +
            " core for " + to_string(spec.id) + ", new epoch expects " +
            std::string(clocks::CausalCoreKindName(kind)));
      }
      core = old_core.Remap(new_local, spec.members.size(), remap.old_of_new);
    } else {
      // Brand-new domain, or this server just joined it: fresh zeros,
      // matching what the surviving members record for the newcomer's
      // rows and columns.
      core = clocks::MakeCausalCore(kind, new_local, spec.members.size(),
                                    plan.new_config.stamp_mode);
    }
    ByteWriter out;
    core->EncodeState(out);
    store.Put(ClockKey(j), std::move(out).Take());
  }
  store.Put(kEpochCurrentKey,
            EncodeEpochRecord(EpochRecord{
                plan.to_epoch, domains::FormatMomConfig(plan.new_config),
                /*prev_config_text=*/{}}));
  store.Delete(kEpochPendingKey);
  CMOM_RETURN_IF_ERROR(store.Commit());
  // The cutover rewrote a large slice of the keyspace; fold the
  // store's history (FileStore truncates its write-ahead log).
  return store.Checkpoint();
}

Status Coordinator::WriteControlRecord(ServerId id, std::string_view key,
                                       std::optional<Bytes> value) {
  if (mom::AgentServer* server = host_->ServerOf(id)) {
    // The server is live: its store may hold a half-staged protocol
    // transaction, so the write must ride the server's own pipeline.
    return server->ApplyControlRecord(key, std::move(value));
  }
  mom::Store* store = host_->StoreOf(id);
  if (store == nullptr) {
    return Status::NotFound("no store for " + to_string(id));
  }
  if (value.has_value()) {
    store->Put(key, std::move(*value));
  } else {
    store->Delete(key);
  }
  return store->Commit();
}

}  // namespace cmom::control
