// Reconfiguration plans: a validated epoch transition E -> E+1.
//
// A plan pairs the old and new MomConfig with, per new-config domain,
// the clock coordinate mapping the cutover applies.  The mapping rule
// is by DomainId: a new-config domain that keeps an id from the old
// config inherits that domain's matrix clock (members remapped through
// clocks::*::Remap, newcomers at zero); a domain under a fresh id
// starts with a fresh all-zero clock.  Both are correct on a quiesced
// cluster -- after the drain every sender/receiver pair agrees on
// every matrix entry, so any consistent per-domain rewrite preserves
// the delivery condition -- but inheriting keeps counters monotonic
// and exercises crash recovery over real clock state.
//
// Building a plan re-runs the full boot-time validation on the new
// config (domains::Deployment::Create), in particular the Section 4.3
// bipartite acyclicity check.  A proposed operation that would create
// a cycle therefore dies HERE, before any store is touched -- the
// "rejected atomically, cluster untouched" guarantee is simply that
// rejection precedes the first write.
//
// The operation helpers (AddServerToDomain, RemoveServer, SplitDomain,
// MergeDomains, PromoteRouter) are pure config -> config functions;
// they check local well-formedness and leave graph-level validation to
// ReconfigPlan::Build.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "domains/config.h"
#include "domains/splitter.h"

namespace cmom::control {

// Clock coordinate mapping for one new-config domain.
struct DomainRemap {
  DomainId id;
  // Index into old_config.domains of the domain whose clock this one
  // inherits (same DomainId), nullopt for a brand-new domain.
  std::optional<std::size_t> old_index;
  // old_of_new[i] = old domain-local id of the server at new local id
  // i, nullopt for a member that just joined.  Empty for new domains.
  std::vector<std::optional<DomainServerId>> old_of_new;
};

struct ReconfigPlan {
  std::uint64_t from_epoch = 0;
  std::uint64_t to_epoch = 0;
  domains::MomConfig old_config;
  domains::MomConfig new_config;
  std::vector<DomainRemap> remaps;  // one per new_config.domains entry

  // Validates new_config (full Deployment::Create, including the
  // acyclicity theorem precondition) and derives the remaps.  The
  // stamp mode must not change across an epoch.
  [[nodiscard]] static Result<ReconfigPlan> Build(
      std::uint64_t from_epoch, domains::MomConfig old_config,
      domains::MomConfig new_config);

  // Servers present in either config (stores the cutover must touch).
  [[nodiscard]] std::vector<ServerId> AllServers() const;
};

// --- operation helpers (pure config transforms) ----------------------

// Adds `server` to `domain` (registering it in the server list when
// new).  Adding a second membership to an existing server is how a
// server is promoted to causal router.
[[nodiscard]] Result<domains::MomConfig> AddServerToDomain(
    const domains::MomConfig& config, ServerId server, DomainId domain);

// Removes `server` from every domain and from the server list.  Fails
// when a domain would become empty.
[[nodiscard]] Result<domains::MomConfig> RemoveServer(
    const domains::MomConfig& config, ServerId server);

// Splits `domain` in two using the traffic-aware splitter (Section 7
// future work): `traffic` indexes the domain's members in member
// order.  The heaviest-communicating members stay together; the first
// part keeps the old DomainId, further parts get new_id, new_id+1, ...
// Splitter-designated routers keep the parts connected to each other.
[[nodiscard]] Result<domains::MomConfig> SplitDomain(
    const domains::MomConfig& config, DomainId domain,
    const domains::TrafficProfile& traffic, DomainId new_id,
    std::size_t max_domain_size);

// Merges domain `b` into domain `a` (a's member order first, then b's
// remaining members); b's id disappears.
[[nodiscard]] Result<domains::MomConfig> MergeDomains(
    const domains::MomConfig& config, DomainId a, DomainId b);

// Promotes `server` (which must already be a member somewhere) into
// `domain`, making it a causal router between its domains.
[[nodiscard]] Result<domains::MomConfig> PromoteRouter(
    const domains::MomConfig& config, ServerId server, DomainId domain);

}  // namespace cmom::control
