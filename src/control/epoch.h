// Durable epoch records -- the control plane's unit of truth.
//
// Every store carries at most two epoch records:
//
//   epoch/current - the configuration the server last cut over to (a
//                   store from before the control plane has none and
//                   is implicitly at epoch 0)
//   epoch/pending - a proposed next configuration, written during the
//                   propose phase and deleted atomically by the same
//                   store commit that advances epoch/current
//
// A record is the epoch number followed by the full configuration text
// (config_io format), so recovery can rebuild a ReconfigPlan from the
// stores alone -- the coordinator object that wrote the proposal may
// have crashed with the rest of the process.
//
// mom::AgentServer reads only the leading varint of epoch/current (to
// cross-check its boot epoch) through a duplicated key literal; the
// full codec lives here so mom never depends on control.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"
#include "mom/store.h"

namespace cmom::control {

inline constexpr std::string_view kEpochCurrentKey = "epoch/current";
inline constexpr std::string_view kEpochPendingKey = "epoch/pending";

struct EpochRecord {
  std::uint64_t epoch = 0;
  // FormatMomConfig() of the epoch's configuration.
  std::string config_text;
  // Pending records also carry the configuration being replaced, so
  // Recover() can rebuild the full ReconfigPlan (including the clock
  // remaps, which need the OLD member orders) with no survivor still
  // at the old epoch.  Empty on current records.
  std::string prev_config_text;

  friend bool operator==(const EpochRecord&, const EpochRecord&) = default;

  void Encode(ByteWriter& out) const;
  [[nodiscard]] static Result<EpochRecord> Decode(ByteReader& in);
};

// Reads the record under `key`, nullopt when absent.
[[nodiscard]] Result<std::optional<EpochRecord>> ReadEpochRecord(
    mom::Store& store, std::string_view key);

// Serializes `record` for a Store::Put (the caller owns the commit, so
// a record write can ride in the same transaction as other changes).
[[nodiscard]] Bytes EncodeEpochRecord(const EpochRecord& record);

// The epoch a store is at: its epoch/current record, or 0 when none.
[[nodiscard]] Result<std::uint64_t> CurrentEpochOf(mom::Store& store);

}  // namespace cmom::control
