// Cluster abstraction and the quiesce fence.
//
// ClusterHost is the coordinator's view of a running cluster: who the
// servers are, their live objects (when up) and their stores (always),
// and how to stop/start them.  workload::ThreadedHarness implements it
// for in-process clusters; a production deployment would implement it
// over its process manager.
//
// FenceController drives the quiesce phase: raise every server's send
// fence, then wait until the whole cluster is simultaneously drained
// (no QueueOUT, QueueIN, hold-back or in-flight work anywhere).  Once
// that state is observed under raised fences it is stable -- nothing
// can mint new protocol work except an application send, and those are
// fenced -- so the cutover may take the cluster apart server by server
// without the invariant decaying.  The observation is repeated on two
// consecutive sweeps to close the window where a frame sits in the
// transport between two servers' individual checks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "domains/config.h"
#include "mom/agent_server.h"
#include "mom/store.h"

namespace cmom::control {

class ClusterHost {
 public:
  virtual ~ClusterHost() = default;

  // Every server the host has ever managed (running or not).
  [[nodiscard]] virtual std::vector<ServerId> KnownServers() = 0;
  // The live server object, or nullptr when stopped/crashed.
  [[nodiscard]] virtual mom::AgentServer* ServerOf(ServerId id) = 0;
  // The server's durable store; outlives the server object.  For a
  // server about to join the cluster this creates a fresh store.
  [[nodiscard]] virtual mom::Store* StoreOf(ServerId id) = 0;
  // Stops the server (graceful halt; the store keeps its state).
  virtual Status StopServer(ServerId id) = 0;
  // (Re)builds the server from its store under `config` at `epoch` and
  // boots it.
  virtual Status StartServer(ServerId id, std::uint64_t epoch,
                             const domains::MomConfig& config) = 0;
};

class FenceController {
 public:
  explicit FenceController(ClusterHost* host) : host_(host) {}

  // Raises the send fence on every running server.
  void RaiseAll();
  // Lowers the fences (quiesce abort, or resume without restart).
  void LowerAll();
  // Polls until two consecutive sweeps find every running server
  // drained (timeout in wall-clock milliseconds).  Fences must already
  // be raised.
  [[nodiscard]] Status AwaitDrained(std::uint64_t timeout_ms);

 private:
  ClusterHost* host_;
};

}  // namespace cmom::control
