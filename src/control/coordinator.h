// The reconfiguration coordinator: epoch E -> E+1, durably.
//
// Protocol (state machine documented in DESIGN.md section 12):
//
//   propose  - ReconfigPlan::Build validated the new config (acyclic
//              domain graph, connected routing).  Write epoch/pending
//              = {E+1, new config} to every affected store.  Nothing
//              behavioral changes; a crash here is rolled BACK.
//   quiesce  - raise every server's send fence and wait for the
//              cluster-wide drain (FenceController).  All queues empty
//              and fenced means no frame, stamp or reaction is in
//              flight anywhere -- the only state the clock remap is
//              correct in.  A crash here is rolled BACK.
//   cutover  - per server: stop it, rewrite its store in ONE commit
//              (old clk/ keys deleted, remapped/fresh clocks written
//              under new domain indices, epoch/current advanced,
//              epoch/pending deleted), checkpoint the store.  The
//              single commit is the atomicity unit: each store is at
//              exactly E or E+1, never between.  A crash here is
//              rolled FORWARD -- the drained-and-fenced invariant was
//              durable by construction (all queue keyspaces empty), so
//              the remaining stores can be cut over cold.
//   resume   - start every new-config server at E+1.  Servers removed
//              by the new config stay down (their stores are stamped
//              E+1 with no clock state).
//
// Recover() re-derives the phase from the stores alone: any store
// already at E+1 means cutover began (roll forward); pending records
// with no store at E+1 mean the crash hit propose/quiesce (roll back,
// delete pending).  Either way the cluster converges to exactly one
// epoch, satisfying the crash-during-reconfig acceptance criterion.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "control/epoch.h"
#include "control/fence.h"
#include "control/plan.h"

namespace cmom::control {

struct CoordinatorOptions {
  // Quiesce budget before the proposal is aborted (rolled back).
  std::uint64_t quiesce_timeout_ms = 10'000;
};

class Coordinator {
 public:
  explicit Coordinator(ClusterHost* host, CoordinatorOptions options = {})
      : host_(host), fence_(host), options_(options) {}

  // The whole protocol; on any failure the cluster is left (or put
  // back) at plan.from_epoch.
  [[nodiscard]] Status Reconfigure(const ReconfigPlan& plan);

  // --- stepwise API (crash-injection tests drive phases manually) ----
  [[nodiscard]] Status Propose(const ReconfigPlan& plan);
  [[nodiscard]] Status Quiesce();
  // Stops `id` and rewrites its store to the plan's new epoch.  Only
  // valid after Quiesce succeeded.
  [[nodiscard]] Status CutoverOne(const ReconfigPlan& plan, ServerId id);
  // Starts every new-config server at the new epoch.
  [[nodiscard]] Status Resume(const ReconfigPlan& plan);
  // Deletes pending records and lifts fences (propose/quiesce abort).
  [[nodiscard]] Status Abort(const ReconfigPlan& plan);

  // Crash recovery from stores alone (see header comment).  Safe to
  // call on a healthy cluster: with no pending records it only
  // restarts servers that are down at their recorded epoch.
  [[nodiscard]] Status Recover();

  // --- store-level primitives (shared with Recover and momtool) ------
  // The one-commit store rewrite for `self` under `plan`.  Requires a
  // drained store: any surviving qout/qin/hold key aborts.
  [[nodiscard]] static Status CutoverStore(mom::Store& store, ServerId self,
                                           const ReconfigPlan& plan);

 private:
  // Durably writes (or deletes, when `value` is nullopt) a control
  // record on a server's store, routing through the live server's
  // transaction pipeline when it is running.
  [[nodiscard]] Status WriteControlRecord(ServerId id, std::string_view key,
                                          std::optional<Bytes> value);

  ClusterHost* host_;
  FenceController fence_;
  CoordinatorOptions options_;
};

}  // namespace cmom::control
