#include "control/epoch.h"

namespace cmom::control {

void EpochRecord::Encode(ByteWriter& out) const {
  out.WriteVarU64(epoch);
  out.WriteString(config_text);
  out.WriteString(prev_config_text);
}

Result<EpochRecord> EpochRecord::Decode(ByteReader& in) {
  auto epoch = in.ReadVarU64();
  if (!epoch.ok()) return epoch.status();
  auto text = in.ReadString();
  if (!text.ok()) return text.status();
  auto prev = in.ReadString();
  if (!prev.ok()) return prev.status();
  EpochRecord record;
  record.epoch = epoch.value();
  record.config_text = std::move(text).value();
  record.prev_config_text = std::move(prev).value();
  return record;
}

Result<std::optional<EpochRecord>> ReadEpochRecord(mom::Store& store,
                                                   std::string_view key) {
  auto blob = store.Get(key);
  if (!blob.has_value()) return std::optional<EpochRecord>{};
  ByteReader in(*blob);
  auto record = EpochRecord::Decode(in);
  if (!record.ok()) return record.status();
  return std::optional<EpochRecord>{std::move(record).value()};
}

Bytes EncodeEpochRecord(const EpochRecord& record) {
  ByteWriter out;
  record.Encode(out);
  return std::move(out).Take();
}

Result<std::uint64_t> CurrentEpochOf(mom::Store& store) {
  auto record = ReadEpochRecord(store, kEpochCurrentKey);
  if (!record.ok()) return record.status();
  return record.value().has_value() ? record.value()->epoch : 0;
}

}  // namespace cmom::control
