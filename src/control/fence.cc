#include "control/fence.h"

#include <chrono>
#include <thread>

namespace cmom::control {

void FenceController::RaiseAll() {
  for (ServerId id : host_->KnownServers()) {
    if (mom::AgentServer* server = host_->ServerOf(id)) server->BeginFence();
  }
}

void FenceController::LowerAll() {
  for (ServerId id : host_->KnownServers()) {
    if (mom::AgentServer* server = host_->ServerOf(id)) server->LiftFence();
  }
}

Status FenceController::AwaitDrained(std::uint64_t timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  int stable_sweeps = 0;
  while (stable_sweeps < 2) {
    bool drained = true;
    for (ServerId id : host_->KnownServers()) {
      mom::AgentServer* server = host_->ServerOf(id);
      if (server == nullptr) continue;  // stopped servers hold no work
      const mom::AgentServer::FenceStatus status = server->fence_status();
      if (!status.active) {
        return Status::FailedPrecondition(
            to_string(id) + " is not fenced; RaiseAll first");
      }
      if (!status.drained) {
        drained = false;
        break;
      }
    }
    stable_sweeps = drained ? stable_sweeps + 1 : 0;
    if (stable_sweeps >= 2) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable("cluster did not drain within timeout");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::Ok();
}

}  // namespace cmom::control
