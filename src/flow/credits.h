// End-to-end credit-based flow control for server-to-server links.
//
// The bus-of-domains topology makes causal router-servers the choke
// points of the whole MOM: every inter-domain message funnels through
// them, and without admission control a slow domain inflates hold-back
// queues, outboxes and QueueIN without bound.  This module provides the
// per-link bookkeeping the Channel uses to bound that growth:
//
//   Receiver side (CreditReceiverLink): counts the frames it has
//   accepted from a peer (delivered or held -- duplicates are free) and
//   advertises a CUMULATIVE grant `granted = accepted + window`, where
//   the window shrinks as the receiver's durable backlog (QueueIN +
//   held frames + in-flight reactions) approaches the high watermark.
//   Grants piggyback on the coalesced AckFrames the Channel already
//   sends; when the backlog drains below the low watermark the Channel
//   pushes a credit-only ack so a paused sender resumes promptly.
//
//   Sender side (CreditSenderLink): counts the frames it has admitted
//   (first emission, not retransmissions) and stops emitting once
//   `admitted == limit`, where `limit` is the max cumulative grant seen
//   from the peer.  Blocked messages stay in QueueOUT, stamped and
//   durable, in FIFO order -- credits only delay the first emission of
//   a frame, they never reorder or drop, so causal order and
//   exactly-once delivery are untouched (a paused link is
//   indistinguishable from a slow network).
//
// Cumulative grants are idempotent and monotone, so a lost or reordered
// ack can never deadlock the window: the next ack carries a larger
// value.  The remaining liveness hole -- a sender whose frames toward a
// peer were ALL blocked before first emission, so no retransmission
// exists to solicit a fresh ack -- is closed by the Channel's credit
// probe timer (see agent_server.h), which force-emits the head blocked
// frame after a timeout.
//
// Restart renegotiation: the counters are in-memory but coupled across
// processes, so a peer restart would desynchronize them -- a restarted
// receiver counts accepted frames from zero and re-counts surviving
// retransmissions its new numbering never saw (the sender's window
// never closes: unbounded backlog), while a restarted sender's
// recovery emissions are mostly duplicates a surviving receiver never
// re-counts (the window never reopens: a link wedged at one
// probe-emitted frame per timeout).  Each server therefore carries a
// durable, monotone per-boot incarnation (a boot counter in its meta
// record): data frames are tagged with the sender's incarnation, and
// ack trailers carry the receiver's incarnation, an echo of the sender
// incarnation the grant was computed against, and the receiver's
// authoritative ACCEPTED COUNT.  The sender does not dead-reckon its
// admission count across restarts; it reconciles it on every ack as
// `accepted + inflight` (Reconcile), which equals the dead-reckoned
// value exactly on an undisturbed FIFO link and converges the restart
// gaps to zero as in-flight entries resolve.  A receiver observing a
// new sender incarnation (ObserveSession) restarts its accepted
// counting; grants echoing a stale sender incarnation are ignored by
// the Channel.  Incarnations are monotone, so reordered frames from an
// older incarnation can never roll a link back.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "common/ids.h"

namespace cmom::flow {

struct FlowOptions {
  // Master switch.  Disabled reproduces the historical unbounded
  // behavior (used as the bench baseline).
  bool enabled = true;
  // Receiver backlog (QueueIN + held frames + in-flight reactions) at
  // which the advertised window reaches zero.
  std::size_t high_watermark = 4096;
  // Backlog below which a receiver proactively re-advertises credit to
  // paused senders (credit-only ack).
  std::size_t low_watermark = 1024;
  // Credit a sender assumes before the first grant from a peer arrives
  // (cold start; also the cap a crashed receiver's sender falls back
  // to).
  std::uint64_t initial_credit = 256;
  // Deficit-round-robin quantum: messages one upstream domain may
  // forward per round while others wait (router fair scheduling).
  std::size_t drr_quantum = 8;
  // Engine admission: local sends are deferred to the wait queue once
  // the engine backlog (QueueIN + in-flight reactions) reaches this.
  std::size_t engine_admit_high = 4096;
  // ... and the wait queue drains once it falls back to this.
  std::size_t engine_admit_low = 2048;
  // QueueOUT size at which local data sends are deferred as well --
  // end-to-end backpressure from a credit-paused link to the producer.
  std::size_t out_admit_high = 8192;
  // Deferred sends beyond this are rejected with kOverloaded.
  std::size_t wait_queue_max = 4096;
};

// Sender half of one (self -> peer) link.
class CreditSenderLink {
 public:
  explicit CreditSenderLink(std::uint64_t initial_credit)
      : limit_(initial_credit) {}

  // True when a new frame may be admitted (first emission) now.
  [[nodiscard]] bool CanAdmit() const {
    return blocked_.empty() && admitted_ < limit_;
  }

  // Records the first emission of a frame.  The frame is in flight
  // until Retire resolves it; the in-flight count is what Reconcile
  // adds on top of the peer's accepted count.
  void Admit() {
    ++admitted_;
    ++inflight_;
  }

  // Queues a message whose first emission must wait for credit.
  void Block(MessageId id) {
    blocked_.push_back(id);
    blocked_ids_.insert(id);
  }

  // Applies a cumulative grant from the peer.  Grants are taken
  // monotonically (max), so reordered or duplicated acks are harmless.
  // Returns true when the update opened headroom for blocked frames.
  bool Grant(std::uint64_t granted) {
    if (granted <= limit_) return false;
    limit_ = granted;
    return !blocked_.empty() && admitted_ < limit_;
  }

  // Reconciles this link against a session-tagged ack: `accepted` is
  // the receiver's authoritative count of frames it has accepted from
  // us under `session`, and `granted` the cumulative grant computed
  // from it.  The sender's admission count is REBUILT as
  //
  //     admitted = accepted + inflight
  //
  // (inflight = our emitted-but-unretired entries) instead of dead-
  // reckoned: on an undisturbed FIFO link the two formulations agree
  // exactly (every admission is either already counted by the peer or
  // still in flight), but across a restart only reconciliation stays
  // correct.  A restarted RECEIVER re-counts retransmissions its new
  // numbering never saw (dead reckoning leaves accepted permanently
  // ahead of admitted: a window that never closes, unbounded backlog);
  // a restarted SENDER's recovery emissions are mostly duplicates the
  // surviving receiver never re-counts (dead reckoning leaves admitted
  // permanently ahead: a wedged link draining one probe frame per
  // timeout).  Reconciling on every ack converges both gaps to zero as
  // the in-flight entries resolve.
  //
  // A LOWER session is a reordered straggler from a dead peer and is
  // ignored; within the current session a smaller-than-seen `accepted`
  // marks a reordered ack whose counts are stale, so only the (monotone)
  // grant is taken.  Returns true when the update opened headroom for
  // blocked frames.
  bool Reconcile(std::uint64_t session, std::uint64_t accepted,
                 std::uint64_t granted) {
    if (session < peer_session_) return false;  // stale incarnation
    if (session == peer_session_ && accepted < last_accepted_) {
      return Grant(granted);  // reordered ack: counts stale, grant monotone
    }
    if (session != peer_session_) {
      peer_session_ = session;
      limit_ = granted;  // new numbering: adopt absolutely, not max'd
    } else if (granted > limit_) {
      limit_ = granted;
    }
    last_accepted_ = accepted;
    admitted_ = accepted + inflight_;
    return !blocked_.empty() && admitted_ < limit_;
  }

  // Pops the next blocked message if headroom exists (the caller emits
  // it and calls Admit()).  Returns false when blocked is empty or the
  // window is exhausted.
  [[nodiscard]] bool NextReleasable(MessageId& out) {
    if (blocked_.empty() || admitted_ >= limit_) return false;
    out = blocked_.front();
    blocked_.pop_front();
    blocked_ids_.erase(out);
    return true;
  }

  // Unconditionally pops the head blocked message (fence bypass and the
  // liveness probe).  Returns false when nothing is blocked.
  [[nodiscard]] bool ForceRelease(MessageId& out) {
    if (blocked_.empty()) return false;
    out = blocked_.front();
    blocked_.pop_front();
    blocked_ids_.erase(out);
    return true;
  }

  // Retires an acknowledged QueueOUT entry.  An entry still blocked was
  // retired before its first emission (e.g. an epoch straggler acked by
  // a recovered peer) and leaves the blocked queue, or it would wedge
  // CanAdmit at the queue head; an emitted entry resolves one in-flight
  // emission.  O(1) for the common emitted case.
  void Retire(MessageId id) {
    if (blocked_ids_.erase(id) != 0) {
      for (auto it = blocked_.begin(); it != blocked_.end(); ++it) {
        if (*it == id) {
          blocked_.erase(it);
          return;
        }
      }
      return;
    }
    if (inflight_ > 0) --inflight_;
  }

  [[nodiscard]] bool paused() const {
    return !blocked_.empty() && admitted_ >= limit_;
  }
  [[nodiscard]] std::size_t blocked_count() const { return blocked_.size(); }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t limit() const { return limit_; }
  [[nodiscard]] std::uint64_t peer_session() const { return peer_session_; }
  [[nodiscard]] std::uint64_t inflight() const { return inflight_; }
  // Headroom still usable (credits outstanding toward this peer).
  [[nodiscard]] std::uint64_t outstanding() const {
    return limit_ > admitted_ ? limit_ - admitted_ : 0;
  }

 private:
  std::uint64_t limit_;          // max cumulative grant seen this session
  std::uint64_t admitted_ = 0;   // frames first-emitted this session
  std::uint64_t inflight_ = 0;   // emitted entries not yet retired
  std::uint64_t last_accepted_ = 0;  // newest accepted count reconciled
  std::uint64_t peer_session_ = 0;  // receiver incarnation (0 = unknown)
  std::deque<MessageId> blocked_;  // QueueOUT entries awaiting credit
  // Membership index over blocked_ so retirement (Forget) is O(1) for
  // ids that were never blocked -- the overwhelmingly common case.
  std::unordered_set<MessageId> blocked_ids_;
};

// Receiver half of one (peer -> self) link.
class CreditReceiverLink {
 public:
  explicit CreditReceiverLink(std::uint64_t initial_credit)
      : advertised_(initial_credit) {}

  // Records one accepted frame (delivered or held; not a duplicate).
  void Accept() { ++accepted_; }

  // Notes the sender incarnation stamped on an incoming data frame.  A
  // HIGHER incarnation means the sender restarted and counts its
  // admissions from zero again, so the accepted count (and the
  // advertisement monotonicity that rides on it) starts over to keep
  // both ends in one numbering.  Lower (reordered stragglers from the
  // dead incarnation) and equal values are no-ops.
  void ObserveSession(std::uint64_t session) {
    if (session <= sender_session_) return;
    if (sender_session_ != 0) {
      accepted_ = 0;
      advertised_ = 0;
    }
    sender_session_ = session;
  }

  // Computes the next cumulative grant for the current backlog.  The
  // result is monotone (never below a previous advertisement).
  [[nodiscard]] std::uint64_t ComputeGrant(std::size_t backlog,
                                           std::size_t high_watermark) {
    const std::uint64_t window =
        backlog >= high_watermark
            ? 0
            : static_cast<std::uint64_t>(high_watermark - backlog);
    const std::uint64_t grant = accepted_ + window;
    if (grant > advertised_) advertised_ = grant;
    return advertised_;
  }

  // True when the last advertisement left the sender no headroom --
  // the link may be paused and deserves a credit-only refresh once the
  // backlog drains.
  [[nodiscard]] bool MaybePaused() const { return advertised_ <= accepted_; }

  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t advertised() const { return advertised_; }
  [[nodiscard]] std::uint64_t sender_session() const {
    return sender_session_;
  }

 private:
  std::uint64_t accepted_ = 0;    // frames accepted this sender session
  std::uint64_t advertised_ = 0;  // last cumulative grant sent
  std::uint64_t sender_session_ = 0;  // sender incarnation (0 = unknown)
};

}  // namespace cmom::flow
