// Deficit-round-robin scheduler over per-domain staging queues.
//
// A causal router-server drains frames from several upstream domains
// and forwards them into downstream domains.  Processing the inbox in
// arrival order lets one hot domain monopolize every forwarding batch
// and starve the quiet ones behind it; the paper's acyclicity theorem
// makes reordering ACROSS upstream domains safe (two messages staged at
// a router simultaneously are always causally concurrent -- a causal
// successor cannot reach the router before its predecessor has left),
// so the router is free to interleave fairly.
//
// Classic DRR (Shreedhar & Varghese): each non-empty queue carries a
// deficit counter; every round the counter grows by the quantum and the
// queue forwards messages while its deficit lasts.  Per-queue FIFO
// order is preserved, which is what keeps the per-link delivery order
// (and hence causal order within each upstream domain) intact.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/ids.h"

namespace cmom::flow {

template <typename Item>
class DrrScheduler {
 public:
  explicit DrrScheduler(std::size_t quantum)
      : quantum_(quantum == 0 ? 1 : quantum) {}

  // Stages one item under its upstream domain.
  void Push(DomainId source, Item item) {
    Queue& queue = QueueFor(source);
    queue.items.push_back(std::move(item));
    ++size_;
  }

  // Pops up to `budget` items fairly across the staged domains,
  // invoking `sink(source, item)` for each.  Returns items popped and
  // the rounds walked (the fairness metric surfaced in ServerStats).
  template <typename Sink>
  std::size_t Drain(std::size_t budget, Sink&& sink,
                    std::uint64_t* rounds_out = nullptr) {
    std::size_t popped = 0;
    std::uint64_t rounds = 0;
    while (popped < budget && size_ > 0) {
      ++rounds;
      bool any = false;
      for (Queue& queue : queues_) {
        if (queue.items.empty()) {
          // An empty queue must not bank credit for later bursts.
          queue.deficit = 0;
          continue;
        }
        any = true;
        queue.deficit += quantum_;
        while (queue.deficit > 0 && !queue.items.empty() &&
               popped < budget) {
          sink(queue.source, std::move(queue.items.front()));
          queue.items.pop_front();
          --queue.deficit;
          --size_;
          ++popped;
        }
        if (popped >= budget) break;
      }
      if (!any) break;
    }
    if (rounds_out != nullptr) *rounds_out += rounds;
    return popped;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Number of distinct upstream domains ever staged (introspection).
  [[nodiscard]] std::size_t queue_count() const { return queues_.size(); }

 private:
  struct Queue {
    DomainId source;
    std::deque<Item> items;
    std::int64_t deficit = 0;
  };

  Queue& QueueFor(DomainId source) {
    for (Queue& queue : queues_) {
      if (queue.source == source) return queue;
    }
    queues_.push_back(Queue{source, {}, 0});
    return queues_.back();
  }

  std::size_t quantum_;
  std::size_t size_ = 0;
  // A router has a handful of upstream domains; linear scan beats a map.
  std::vector<Queue> queues_;
};

}  // namespace cmom::flow
