// Persistent dead-letter records for slow-consumer overflow.
//
// A bounded pubsub queue (or any agent that decides a message cannot be
// buffered) retires the message into a dead-letter record instead of
// silently dropping it.  The record is written by the Engine in the
// SAME store transaction as the reaction that shed the message, so
// "dead-lettered" is as durable and exactly-once as "delivered": a
// crash either replays the reaction (which sheds again, overwriting the
// same decision) or finds the record already on disk.
//
// Records live under `dlq/<seq hex16>` next to the server's other
// incremental keys and are inspected offline with `momtool dlq <dir>`.
// This module only knows the codec and the key scheme; it has no
// dependency on the mom layer so the flow library stays at the bottom
// of the dependency stack.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/status.h"

namespace cmom::flow {

// Store key prefix for dead-letter records.
inline constexpr char kDeadLetterKeyPrefix[] = "dlq/";

// Key for the `seq`-th dead-letter record of a server (fixed-width hex
// so lexicographic key order is record order).
[[nodiscard]] std::string DeadLetterKey(std::uint64_t seq);

// Parses the sequence number out of a `dlq/<hex>` key.  Returns false
// on malformed keys.
[[nodiscard]] bool ParseDeadLetterKey(const std::string& key,
                                      std::uint64_t& seq_out);

// One shed message: why it was shed plus enough of the original to
// re-drive or debug it.
struct DeadLetterRecord {
  std::string reason;  // e.g. "queue depth limit" with the agent id
  MessageId id;        // original message identity
  AgentId from;
  AgentId to;
  std::string subject;
  Bytes payload;

  friend bool operator==(const DeadLetterRecord&,
                         const DeadLetterRecord&) = default;

  [[nodiscard]] Bytes Serialize() const;
  [[nodiscard]] static Result<DeadLetterRecord> Deserialize(
      std::span<const std::uint8_t> bytes);
};

}  // namespace cmom::flow
