#include "flow/dead_letter.h"

namespace cmom::flow {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

void AppendHex(std::string& out, std::uint64_t value, int nibbles) {
  for (int i = nibbles - 1; i >= 0; --i) {
    out.push_back(kHexDigits[(value >> (4 * i)) & 0xF]);
  }
}

}  // namespace

std::string DeadLetterKey(std::uint64_t seq) {
  std::string key = kDeadLetterKeyPrefix;
  AppendHex(key, seq, 16);
  return key;
}

bool ParseDeadLetterKey(const std::string& key, std::uint64_t& seq_out) {
  const std::size_t prefix_size = sizeof(kDeadLetterKeyPrefix) - 1;
  if (key.size() != prefix_size + 16 ||
      key.compare(0, prefix_size, kDeadLetterKeyPrefix) != 0) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = prefix_size; i < key.size(); ++i) {
    const char c = key[i];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  seq_out = value;
  return true;
}

Bytes DeadLetterRecord::Serialize() const {
  ByteWriter out;
  out.Reserve(reason.size() + subject.size() + payload.size() + 32);
  out.WriteString(reason);
  out.WriteU16(id.origin.value());
  out.WriteVarU64(id.seq);
  out.WriteU16(from.server.value());
  out.WriteVarU32(from.local);
  out.WriteU16(to.server.value());
  out.WriteVarU32(to.local);
  out.WriteString(subject);
  out.WriteBytes(payload);
  return std::move(out).Take();
}

Result<DeadLetterRecord> DeadLetterRecord::Deserialize(
    std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  DeadLetterRecord record;
  auto reason = in.ReadString();
  if (!reason.ok()) return reason.status();
  record.reason = std::move(reason).value();
  auto origin = in.ReadU16();
  if (!origin.ok()) return origin.status();
  record.id.origin = ServerId(origin.value());
  auto seq = in.ReadVarU64();
  if (!seq.ok()) return seq.status();
  record.id.seq = seq.value();
  auto from_server = in.ReadU16();
  if (!from_server.ok()) return from_server.status();
  record.from.server = ServerId(from_server.value());
  auto from_local = in.ReadVarU32();
  if (!from_local.ok()) return from_local.status();
  record.from.local = from_local.value();
  auto to_server = in.ReadU16();
  if (!to_server.ok()) return to_server.status();
  record.to.server = ServerId(to_server.value());
  auto to_local = in.ReadVarU32();
  if (!to_local.ok()) return to_local.status();
  record.to.local = to_local.value();
  auto subject = in.ReadString();
  if (!subject.ok()) return subject.status();
  record.subject = std::move(subject).value();
  auto payload = in.ReadBytes();
  if (!payload.ok()) return payload.status();
  record.payload = std::move(payload).value();
  return record;
}

}  // namespace cmom::flow
