#include "flow/admission.h"

namespace cmom::flow {

Priority ClassifyPriority(std::string_view subject) {
  // Pubsub management verbs (subscription churn must survive overload;
  // shedding them wedges consumers forever) and anything under an
  // explicit "control." namespace.  Payload-bearing verbs -- put,
  // publish, task, event -- are data.
  if (subject == "queue.listen" || subject == "queue.ignore" ||
      subject == "topic.subscribe" || subject == "topic.unsubscribe") {
    return Priority::kControl;
  }
  if (subject.size() >= 8 && subject.substr(0, 8) == "control.") {
    return Priority::kControl;
  }
  return Priority::kData;
}

Admission AdmitSend(Priority priority, std::size_t engine_backlog,
                    std::size_t out_backlog, std::size_t wait_queue_depth,
                    bool deferring, bool sender_has_deferred,
                    const FlowOptions& options) {
  if (!options.enabled) return Admission::kAdmit;
  if (priority == Priority::kControl) {
    // Control goes through overload, but not AROUND the same agent's
    // parked sends: ids are assigned in call order, yet stamping order
    // is what carries causal order, so jumping the queue would apply
    // one producer's sends out of order.  It defers behind them --
    // exempt from the wait-queue cap, delayed but never shed.
    return sender_has_deferred ? Admission::kDefer : Admission::kAdmit;
  }
  const bool over = engine_backlog >= options.engine_admit_high ||
                    out_backlog >= options.out_admit_high;
  if (!over && !deferring) return Admission::kAdmit;
  if (wait_queue_depth >= options.wait_queue_max) return Admission::kReject;
  return Admission::kDefer;
}

bool ShouldDrainWaitQueue(std::size_t engine_backlog, std::size_t out_backlog,
                          const FlowOptions& options) {
  return engine_backlog <= options.engine_admit_low &&
         out_backlog < options.out_admit_high;
}

}  // namespace cmom::flow
