#include "flow/admission.h"

namespace cmom::flow {

Priority ClassifyPriority(std::string_view subject) {
  // Pubsub management verbs (subscription churn must survive overload;
  // shedding them wedges consumers forever) and anything under an
  // explicit "control." namespace.  Payload-bearing verbs -- put,
  // publish, task, event -- are data.
  if (subject == "queue.listen" || subject == "queue.ignore" ||
      subject == "topic.subscribe" || subject == "topic.unsubscribe") {
    return Priority::kControl;
  }
  if (subject.size() >= 8 && subject.substr(0, 8) == "control.") {
    return Priority::kControl;
  }
  return Priority::kData;
}

Admission AdmitSend(Priority priority, std::size_t engine_backlog,
                    std::size_t out_backlog, std::size_t wait_queue_depth,
                    bool deferring, const FlowOptions& options) {
  if (!options.enabled || priority == Priority::kControl) {
    return Admission::kAdmit;
  }
  const bool over = engine_backlog >= options.engine_admit_high ||
                    out_backlog >= options.out_admit_high;
  if (!over && !deferring) return Admission::kAdmit;
  if (wait_queue_depth >= options.wait_queue_max) return Admission::kReject;
  return Admission::kDefer;
}

bool ShouldDrainWaitQueue(std::size_t engine_backlog, std::size_t out_backlog,
                          const FlowOptions& options) {
  return engine_backlog <= options.engine_admit_low &&
         out_backlog < options.out_admit_high;
}

}  // namespace cmom::flow
