// Engine admission control with two priority classes.
//
// Credits bound what a *link* accepts; admission control bounds what
// the *local engine* accepts from its own agents.  Without it, a
// producer agent colocated with a congested server keeps stuffing
// QueueOUT (local sends never cross a credit-gated link before they are
// durable), so the server's own clients can OOM it from the inside.
//
// Two classes:
//   kControl  -- fence/epoch traffic and pubsub control subjects
//                (subscribe, listen, ignore).  Never shed: quiesce must
//                be able to drain a saturated server, and dropping a
//                subscription request wedges the application forever.
//                Admitted immediately UNLESS the same agent already has
//                data sends parked on the wait queue -- then the
//                control send queues behind them (exempt from the depth
//                cap), because admitting it would process one
//                producer's sends out of call order (e.g. an
//                unsubscribe overtaking the publish that preceded it).
//   kData     -- everything else.  Deferred to a bounded wait queue
//                when the engine or QueueOUT backlog crosses the high
//                threshold, re-admitted in FIFO order once it falls
//                back to the low threshold, rejected with kOverloaded
//                once the wait queue itself is full.
#pragma once

#include <cstddef>
#include <string_view>

#include "flow/credits.h"

namespace cmom::flow {

enum class Priority { kControl, kData };

enum class Admission {
  kAdmit,   // process now
  kDefer,   // park on the bounded wait queue
  kReject,  // wait queue full: fail the send with kOverloaded
};

// Subject-based priority classification.  Control-class subjects are
// the pubsub/queue management verbs; fences and epoch records never
// reach this path (they ride ApplyControlRecord / BeginFence), but
// their application-visible companions do.
[[nodiscard]] Priority ClassifyPriority(std::string_view subject);

// Pure decision function over the server's current backlog gauges.
// `engine_backlog` counts the inline QueueIN *plus* reactions
// dispatched onto the parallel engine's shard rings and not yet
// group-committed (the server's own engine_inflight_ gauge) -- an O(1)
// server-side count, deliberately not a sum of ring PendingCount reads,
// so the admission decision sees one coherent number even while
// workers drain rings concurrently.  `deferring` latches hysteresis:
// once sends are being deferred, new data sends keep deferring
// (preserving FIFO among data sends) until the wait queue has fully
// drained.  `sender_has_deferred` reports
// whether the sending agent already has sends parked on the wait
// queue; a control send then defers behind them (never rejects) so
// per-sender processing order survives overload.
[[nodiscard]] Admission AdmitSend(Priority priority, std::size_t engine_backlog,
                                  std::size_t out_backlog,
                                  std::size_t wait_queue_depth, bool deferring,
                                  bool sender_has_deferred,
                                  const FlowOptions& options);

// True once backlog has drained enough to start releasing the wait
// queue (low-threshold hysteresis so release doesn't flap).
[[nodiscard]] bool ShouldDrainWaitQueue(std::size_t engine_backlog,
                                        std::size_t out_backlog,
                                        const FlowOptions& options);

}  // namespace cmom::flow
