// Collaborative work across a hierarchy of domains: a causal chat room.
//
// Users are agents scattered over a tree of domains (Figure 9, right);
// the room is a TopicAgent on the root server.  Users publish posts,
// and reply (quoting the post) from inside their reaction to it --
// so publish(post) causally precedes publish(reply), and causal
// delivery guarantees no subscriber ever reads a reply before the post
// it quotes, across any number of causal router-servers.  Each user
// checks that invariant locally; the run also passes the global oracle.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "domains/topologies.h"
#include "pubsub/topic.h"
#include "workload/sim_harness.h"

using namespace cmom;

namespace {

constexpr std::uint32_t kRoomLocal = 1;
constexpr std::uint32_t kUserLocal = 2;

// Payload: [quoted post id][text].
Bytes EncodeChat(const std::string& quoted, const std::string& text) {
  ByteWriter out;
  out.WriteString(quoted);  // empty = original post
  out.WriteString(text);
  return std::move(out).Take();
}

class UserAgent final : public mom::Agent {
 public:
  UserAgent(AgentId room, std::uint64_t seed) : room_(room), rng_(seed) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    auto event = pubsub::DecodeEvent(message);
    if (!event.ok() || event.value().name != "chat") return;
    ByteReader in(event.value().body);
    auto quoted = in.ReadString();
    auto text = in.ReadString();
    if (!quoted.ok() || !text.ok()) return;

    seen_.insert(text.value());
    if (!quoted.value().empty() && !seen_.contains(quoted.value())) {
      ++replies_before_original_;  // must never happen under causal order
    }
    // Reply to originals, sometimes (replying to replies too would be
    // just as causal, but bounding depth keeps the example short).
    if (quoted.value().empty() && rng_.NextBool(0.3)) {
      const std::string reply = "re(" + text.value() + ")@" +
                                std::to_string(ctx.self().server.value());
      pubsub::PublishFrom(ctx, room_, "chat",
                          EncodeChat(text.value(), reply));
    }
  }

  [[nodiscard]] std::size_t messages_seen() const { return seen_.size(); }
  [[nodiscard]] std::size_t violations() const {
    return replies_before_original_;
  }

 private:
  AgentId room_;
  Rng rng_;
  std::set<std::string> seen_;
  std::size_t replies_before_original_ = 0;
};

}  // namespace

int main() {
  // A tree of domains: branching 2, five servers per domain, depth 2.
  auto config = domains::topologies::Tree(2, 5, 2);
  workload::SimHarness harness(config);
  const AgentId room{ServerId(0), kRoomLocal};

  std::vector<UserAgent*> users;
  Status status = harness.Init([&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(0)) {
      server.AttachAgent(kRoomLocal, std::make_unique<pubsub::TopicAgent>());
    }
    auto user = std::make_unique<UserAgent>(room, 7 + id.value());
    users.push_back(user.get());
    server.AttachAgent(kUserLocal, std::move(user));
  });
  if (!status.ok() || !harness.BootAll().ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  for (ServerId id : config.servers) {
    (void)pubsub::Subscribe(harness.server(id), AgentId{id, kUserLocal},
                            room);
  }
  harness.Run();

  // Three users post originals; replies ripple causally from there.
  int post = 0;
  for (ServerId id : {ServerId(1), ServerId(6), ServerId(12)}) {
    const std::string text = "post" + std::to_string(post++);
    (void)pubsub::Publish(harness.server(id), AgentId{id, kUserLocal}, room,
                          "chat", EncodeChat("", text));
  }
  harness.Run();

  std::size_t total_seen = 0, violations = 0;
  for (UserAgent* user : users) {
    total_seen += user->messages_seen();
    violations += user->violations();
  }
  auto checker = harness.MakeChecker();
  const bool oracle_ok =
      checker.CheckCausalDelivery(harness.trace().Snapshot()).causal();

  std::printf("Causal chat room over %zu servers in %zu domains (tree):\n",
              config.servers.size(), config.domains.size());
  std::printf("  chat messages observed (sum over users): %zu\n", total_seen);
  std::printf("  replies read before their original:      %zu\n", violations);
  std::printf("  global oracle: %s\n", oracle_ok ? "causal" : "VIOLATED");
  return violations == 0 && oracle_ok ? 0 : 1;
}
