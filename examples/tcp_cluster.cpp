// A real TCP cluster of agent servers on loopback -- the deployment
// shape of the paper's testbed (one process per agent server, TCP
// links), scaled down to one machine.
//
// Six servers in two domains of causality with a backbone; an inventory
// service on one side, order processors on the other.  Orders flow
// across the causal router-servers over real sockets; the oracle
// verifies causal exactly-once delivery at the end.
#include <chrono>
#include <cstdio>
#include <thread>

#include "causality/checker.h"
#include "domains/topologies.h"
#include "mom/agent_server.h"
#include "net/runtime.h"
#include "net/tcp_network.h"
#include "workload/agents.h"

using namespace cmom;

namespace {

constexpr std::uint16_t kBasePort = 24100;

class InventoryAgent final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    if (message.subject != "order") return;
    ++orders_;
    // Confirm back to the order processor that sent it.
    ctx.Send(message.from, "confirmed", message.payload);
  }
  [[nodiscard]] std::uint64_t orders() const { return orders_; }

 private:
  std::uint64_t orders_ = 0;
};

class ProcessorAgent final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    if (message.subject == "confirmed") ++confirmations_;
  }
  [[nodiscard]] std::uint64_t confirmations() const { return confirmations_; }

 private:
  std::uint64_t confirmations_ = 0;
};

}  // namespace

int main() {
  // Bus(2,3): domain 1 = {S0,S1,S2}, domain 2 = {S3,S4,S5},
  // backbone D0 = {S0,S3}.  Inventory on S2, processors on S4 and S5.
  auto config = domains::topologies::Bus(2, 3);
  auto deployment = domains::Deployment::Create(config).value();

  net::TcpNetwork network(kBasePort);
  net::ThreadRuntime runtime;
  causality::TraceRecorder trace;

  std::vector<std::unique_ptr<mom::InMemoryStore>> stores;
  std::vector<std::unique_ptr<net::Endpoint>> endpoints;
  std::vector<std::unique_ptr<mom::AgentServer>> servers;
  InventoryAgent* inventory = nullptr;
  std::vector<ProcessorAgent*> processors;

  for (ServerId id : deployment.servers()) {
    auto endpoint = network.CreateEndpoint(id);
    if (!endpoint.ok()) {
      std::fprintf(stderr, "endpoint %s: %s\n", to_string(id).c_str(),
                   endpoint.status().to_string().c_str());
      return 1;
    }
    endpoints.push_back(std::move(endpoint).value());
    stores.push_back(std::make_unique<mom::InMemoryStore>());
    mom::AgentServerOptions options;
    options.trace = &trace;
    servers.push_back(std::make_unique<mom::AgentServer>(
        deployment, id, endpoints.back().get(), &runtime,
        stores.back().get(), options));
    if (id == ServerId(2)) {
      auto agent = std::make_unique<InventoryAgent>();
      inventory = agent.get();
      servers.back()->AttachAgent(1, std::move(agent));
    }
    if (id == ServerId(4) || id == ServerId(5)) {
      auto agent = std::make_unique<ProcessorAgent>();
      processors.push_back(agent.get());
      servers.back()->AttachAgent(1, std::move(agent));
    }
    if (Status status = servers.back()->Boot(); !status.ok()) {
      std::fprintf(stderr, "boot: %s\n", status.to_string().c_str());
      return 1;
    }
  }

  std::printf("TCP cluster up: 6 servers on 127.0.0.1:%u..%u\n", kBasePort,
              kBasePort + 5);

  // Each processor submits 10 orders to the inventory across the bus.
  const AgentId inventory_id{ServerId(2), 1};
  for (std::uint16_t processor : {4, 5}) {
    for (int i = 0; i < 10; ++i) {
      auto sent = servers[processor]->SendMessage(
          AgentId{ServerId(processor), 1}, inventory_id, "order",
          Bytes{static_cast<std::uint8_t>(i)});
      if (!sent.ok()) {
        std::fprintf(stderr, "send failed: %s\n",
                     sent.status().to_string().c_str());
        return 1;
      }
    }
  }

  // Wait for quiescence (all servers idle, three stable observations).
  for (int stable = 0; stable < 3;) {
    bool idle = true;
    for (auto& server : servers) idle = idle && server->Idle();
    stable = idle ? stable + 1 : 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  std::printf("inventory processed %llu orders\n",
              static_cast<unsigned long long>(inventory->orders()));
  std::uint64_t confirmations = 0;
  for (ProcessorAgent* processor : processors) {
    confirmations += processor->confirmations();
  }
  std::printf("processors got %llu confirmations\n",
              static_cast<unsigned long long>(confirmations));
  std::printf("router S0 forwarded %llu messages, S3 forwarded %llu\n",
              static_cast<unsigned long long>(
                  servers[0]->stats().messages_forwarded),
              static_cast<unsigned long long>(
                  servers[3]->stats().messages_forwarded));

  causality::CausalityChecker checker(std::vector<ServerId>(
      deployment.servers().begin(), deployment.servers().end()));
  auto snapshot = trace.Snapshot();
  const bool causal = checker.CheckCausalDelivery(snapshot).causal();
  const bool exactly_once = checker.CheckExactlyOnce(snapshot).ok();
  std::printf("oracle: causal=%s exactly-once=%s\n", causal ? "yes" : "NO",
              exactly_once ? "yes" : "NO");

  for (auto& server : servers) server->Shutdown();
  return inventory->orders() == 20 && confirmations == 20 && causal &&
                 exactly_once
             ? 0
             : 1;
}
