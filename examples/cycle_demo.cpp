// The theorem, live: why the domain graph must be acyclic.
//
// Builds the paper's Figure 4(a) scenario on a ring of four domains:
// p = S0 and q = S3 share a domain, and a chain of forwarders runs the
// long way around the ring.  p sends a direct message to q on a slow
// link, then starts the chain.  Per-domain causal order holds
// everywhere, yet q reads the chain's message -- which causally
// depends on the direct one -- first.  Breaking the ring (removing the
// closing domain) routes the "direct" message through the same chain
// of domains, and causality is restored.
//
// This is the narrative companion of bench/theorem_demo.cc.
#include <cstdio>
#include <optional>

#include "causality/checker.h"
#include "domains/topologies.h"
#include "workload/sim_harness.h"

using namespace cmom;

namespace {

class RelayAgent final : public mom::Agent {
 public:
  explicit RelayAgent(std::optional<AgentId> next) : next_(next) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    std::printf("    t=%6.1fms  %s reads '%s'\n",
                static_cast<double>(ctx.NowNs()) / 1e6,
                to_string(ctx.self().server).c_str(),
                message.subject.c_str());
    if (next_) ctx.Send(*next_, message.subject, message.payload);
  }

 private:
  std::optional<AgentId> next_;
};

bool RunScenario(domains::MomConfig config, const char* title) {
  std::printf("\n%s\n", title);
  constexpr std::uint16_t kLast = 3;

  workload::SimHarness harness(std::move(config));
  Status status = harness.Init([&](ServerId id, mom::AgentServer& server) {
    std::optional<AgentId> next;
    if (id.value() < kLast) {
      next = AgentId{ServerId(static_cast<std::uint16_t>(id.value() + 1)), 1};
    }
    server.AttachAgent(1, std::make_unique<RelayAgent>(
                              id.value() == 0 || id.value() == kLast
                                  ? std::optional<AgentId>{}
                                  : next));
  });
  if (!status.ok() || !harness.BootAll().ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.to_string().c_str());
    return false;
  }

  // The direct S0 -> S3 link is pathologically slow.
  harness.network().SetLinkLatency(ServerId(0), ServerId(kLast),
                                   800 * sim::kMillisecond);

  // S0: first the direct message to S3, then the chain via S1.
  (void)harness.Send(ServerId(0), 1, ServerId(kLast), 1, "direct-news");
  (void)harness.Send(ServerId(0), 1, ServerId(1), 1, "chain-gossip");
  harness.Run();

  auto checker = harness.MakeChecker();
  auto report = checker.CheckCausalDelivery(harness.trace().Snapshot());
  if (report.causal()) {
    std::printf("  => causal order PRESERVED\n");
  } else {
    std::printf("  => causal order VIOLATED: %s\n",
                report.violations.front().description.c_str());
  }
  return report.causal();
}

}  // namespace

int main() {
  std::printf(
      "Figure 4(a) live: S0 tells S3 directly, then gossips around the\n"
      "ring; the gossip causally follows the direct message.\n");

  // Ring of 4 domains, 2 routers each: servers S0..S3, domain i =
  // {S(i-1 mod 4), S(i)}; S0 and S3 share the closing domain D0.
  const bool ring_causal =
      RunScenario(domains::topologies::Ring(4, 2),
                  "Ring of domains (CYCLIC -- the theorem's bad case):");

  // Same servers, ring broken: drop the closing domain D0.
  auto line = domains::topologies::Ring(4, 2);
  std::erase_if(line.domains, [](const domains::DomainSpec& domain) {
    return domain.id == DomainId(0);
  });
  line.allow_cyclic_domain_graph = false;
  const bool line_causal =
      RunScenario(std::move(line),
                  "Same scenario, cycle broken (ACYCLIC -- theorem holds):");

  std::printf("\nConclusion: %s\n",
              !ring_causal && line_causal
                  ? "cycle => violation possible; acyclic => causality "
                    "guaranteed.  QED (experimentally)."
                  : "unexpected outcome -- investigate!");
  return !ring_causal && line_causal ? 0 : 1;
}
