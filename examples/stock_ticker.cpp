// Stock-exchange quotations -- the first application class the paper's
// introduction motivates -- on the causal pub/sub layer.
//
// A quote topic lives on a backbone router of a bus of domains.
// Trading desks in different domains subscribe; the exchange publishes
// quotes and, occasionally, a CANCEL for a quote it just published.
// Causal delivery is what makes the scenario safe: since
// publish(quote) causally precedes publish(cancel), no desk can ever
// see the cancel before the quote it refers to -- across any number of
// router hops.  The example verifies exactly that on every desk.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "domains/topologies.h"
#include "pubsub/topic.h"
#include "workload/sim_harness.h"

using namespace cmom;

namespace {

constexpr std::uint32_t kTopicLocal = 1;
constexpr std::uint32_t kDeskLocal = 2;
constexpr std::uint32_t kExchangeLocal = 3;

// A trading desk: tracks the best quote per symbol and flags any
// cancel that arrives before its quote (a causality violation).
class DeskAgent final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    auto event = pubsub::DecodeEvent(message);
    if (!event.ok()) return;
    const std::string payload(event.value().body.begin(),
                              event.value().body.end());
    if (event.value().name == "quote") {
      quotes_seen_.insert(payload);  // payload = quote id
    } else if (event.value().name == "cancel") {
      if (!quotes_seen_.contains(payload)) {
        ++anomalies_;  // cancel for a quote we never saw: impossible
      }
      ++cancels_seen_;
    }
  }

  [[nodiscard]] std::size_t quotes() const { return quotes_seen_.size(); }
  [[nodiscard]] std::size_t cancels() const { return cancels_seen_; }
  [[nodiscard]] std::size_t anomalies() const { return anomalies_; }

 private:
  std::set<std::string> quotes_seen_;
  std::size_t cancels_seen_ = 0;
  std::size_t anomalies_ = 0;
};

}  // namespace

int main() {
  // Four trading floors of three servers each; the backbone D0 links
  // their routers.  The topic lives on router S0, the exchange feeds
  // from S1, desks sit on far servers of the other floors.
  auto config = domains::topologies::Bus(4, 3);
  workload::SimHarness harness(config);

  std::vector<DeskAgent*> desks;
  const std::vector<ServerId> desk_servers = {ServerId(4), ServerId(8),
                                              ServerId(11)};
  Status status = harness.Init([&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(0)) {
      server.AttachAgent(kTopicLocal, std::make_unique<pubsub::TopicAgent>());
    }
    for (ServerId desk_server : desk_servers) {
      if (id == desk_server) {
        auto desk = std::make_unique<DeskAgent>();
        desks.push_back(desk.get());
        server.AttachAgent(kDeskLocal, std::move(desk));
      }
    }
  });
  if (!status.ok() || !harness.BootAll().ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  const AgentId topic{ServerId(0), kTopicLocal};
  for (ServerId desk_server : desk_servers) {
    (void)pubsub::Subscribe(harness.server(desk_server),
                            AgentId{desk_server, kDeskLocal}, topic);
  }
  harness.Run();

  // The exchange on S1 publishes 20 quotes; every third one is
  // cancelled immediately after being published.
  const AgentId exchange{ServerId(1), kExchangeLocal};
  std::size_t cancels = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string quote_id = "Q" + std::to_string(i);
    Bytes body(quote_id.begin(), quote_id.end());
    (void)pubsub::Publish(harness.server(ServerId(1)), exchange, topic,
                          "quote", body);
    if (i % 3 == 0) {
      (void)pubsub::Publish(harness.server(ServerId(1)), exchange, topic,
                            "cancel", body);
      ++cancels;
    }
  }
  harness.Run();

  std::printf("Stock ticker over %zu domains, %zu desks:\n",
              config.domains.size(), desks.size());
  bool ok = true;
  for (std::size_t i = 0; i < desks.size(); ++i) {
    std::printf(
        "  desk %zu: %zu quotes, %zu cancels, %zu causality anomalies\n",
        i, desks[i]->quotes(), desks[i]->cancels(), desks[i]->anomalies());
    ok = ok && desks[i]->quotes() == 20 && desks[i]->cancels() == cancels &&
         desks[i]->anomalies() == 0;
  }
  std::printf(ok ? "All desks saw every cancel AFTER its quote.\n"
                 : "ANOMALY: a cancel overtook its quote!\n");
  return ok ? 0 : 1;
}
