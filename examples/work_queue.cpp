// A distributed worker pool on the point-to-point queue destination.
//
// A dispatcher server hosts a QueueAgent; worker agents on other
// domains register as competing consumers; producers put render jobs.
// The queue dispatches each job to exactly one worker (round-robin),
// per-worker order follows causal put order, and jobs submitted before
// any worker exists are buffered durably.
#include <cstdio>
#include <string>
#include <vector>

#include "domains/topologies.h"
#include "pubsub/queue.h"
#include "workload/sim_harness.h"

using namespace cmom;

namespace {

constexpr std::uint32_t kQueueLocal = 1;
constexpr std::uint32_t kWorkerLocal = 2;
constexpr std::uint32_t kProducerLocal = 3;

class RenderWorker final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    auto task = pubsub::DecodeTask(message);
    if (!task.ok()) return;
    std::printf("  worker on %s renders %s (from agent %u.%u)\n",
                to_string(ctx.self().server).c_str(),
                task.value().name.c_str(), task.value().producer.server.value(),
                task.value().producer.local);
    ++rendered_;
  }
  [[nodiscard]] std::size_t rendered() const { return rendered_; }

 private:
  std::size_t rendered_ = 0;
};

}  // namespace

int main() {
  // Three domains on a bus; the queue lives on backbone router S0,
  // workers sit in the other two domains.
  auto config = domains::topologies::Bus(3, 3);
  workload::SimHarness harness(config);
  const AgentId queue{ServerId(0), kQueueLocal};

  std::vector<RenderWorker*> workers;
  const std::vector<ServerId> worker_servers = {ServerId(4), ServerId(7)};
  Status status = harness.Init([&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(0)) {
      server.AttachAgent(kQueueLocal, std::make_unique<pubsub::QueueAgent>());
    }
    for (ServerId worker_server : worker_servers) {
      if (id == worker_server) {
        auto worker = std::make_unique<RenderWorker>();
        workers.push_back(worker.get());
        server.AttachAgent(kWorkerLocal, std::move(worker));
      }
    }
  });
  if (!status.ok() || !harness.BootAll().ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  // Jobs arrive before any worker registered: buffered durably.
  std::printf("submitting 4 early jobs (no workers yet)...\n");
  for (int i = 0; i < 4; ++i) {
    (void)pubsub::Put(harness.server(ServerId(1)),
                      AgentId{ServerId(1), kProducerLocal}, queue,
                      "frame-" + std::to_string(i));
  }
  harness.Run();

  std::printf("workers come online...\n");
  for (ServerId worker_server : worker_servers) {
    (void)pubsub::Listen(harness.server(worker_server),
                         AgentId{worker_server, kWorkerLocal}, queue);
  }
  harness.Run();

  std::printf("submitting 6 more jobs...\n");
  for (int i = 4; i < 10; ++i) {
    (void)pubsub::Put(harness.server(ServerId(2)),
                      AgentId{ServerId(2), kProducerLocal}, queue,
                      "frame-" + std::to_string(i));
  }
  harness.Run();

  std::size_t total = 0;
  for (RenderWorker* worker : workers) total += worker->rendered();
  std::printf("rendered %zu/10 jobs across %zu workers (%zu + %zu)\n", total,
              workers.size(), workers[0]->rendered(),
              workers[1]->rendered());
  return total == 10 ? 0 : 1;
}
