// Quickstart: a three-server MOM in one domain of causality.
//
// Shows the minimal full path through the public API:
//   topology -> harness -> agents -> send -> run -> verify.
// An agent on S0 greets an agent on S2; the greeter replies; the oracle
// confirms the exchange was causal and exactly-once.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "domains/topologies.h"
#include "workload/sim_harness.h"

using namespace cmom;

namespace {

// A minimal agent: prints what it receives and answers "hello" once.
class GreeterAgent final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    std::printf("  [%s] agent %u.%u got '%s' from %u.%u\n",
                to_string(ctx.self().server).c_str(), ctx.self().server.value(),
                ctx.self().local, message.subject.c_str(),
                message.from.server.value(), message.from.local);
    if (message.subject == "hello") {
      ctx.Send(message.from, "hello-back");
    }
  }
};

}  // namespace

int main() {
  // 1. Describe the MOM: three servers, one domain of causality.
  auto config = domains::topologies::Flat(3);

  // 2. Assemble the simulated bus (swap in ThreadedHarness or the TCP
  //    transport for real time -- the agent code does not change).
  workload::SimHarness harness(config);
  Status status = harness.Init([](ServerId id, mom::AgentServer& server) {
    (void)id;
    server.AttachAgent(/*local_id=*/1, std::make_unique<GreeterAgent>());
  });
  if (!status.ok()) {
    std::fprintf(stderr, "init: %s\n", status.to_string().c_str());
    return 1;
  }
  if (Status boot = harness.BootAll(); !boot.ok()) {
    std::fprintf(stderr, "boot: %s\n", boot.to_string().c_str());
    return 1;
  }

  // 3. Send a message from the agent on S0 to the agent on S2.
  std::printf("S0 greets S2...\n");
  auto sent = harness.Send(ServerId(0), 1, ServerId(2), 1, "hello");
  if (!sent.ok()) {
    std::fprintf(stderr, "send: %s\n", sent.status().to_string().c_str());
    return 1;
  }

  // 4. Run the bus to quiescence.
  harness.Run();

  // 5. Verify with the causality oracle.
  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  const bool causal = checker.CheckCausalDelivery(trace).causal();
  const bool exactly_once = checker.CheckExactlyOnce(trace).ok();
  std::printf("causal delivery: %s, exactly-once: %s\n",
              causal ? "yes" : "NO", exactly_once ? "yes" : "NO");
  return causal && exactly_once ? 0 : 1;
}
